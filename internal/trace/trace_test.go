package trace_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"sublinear/internal/metrics"
	"sublinear/internal/netsim"
	"sublinear/internal/trace"
)

var (
	kindPing = metrics.InternKind("trace-ping")
	kindBig  = metrics.InternKind("trace-big")
)

type payload struct {
	bits int
	kind metrics.Kind
}

func (p payload) Bits(int) int         { return p.bits }
func (p payload) Kind() string         { return metrics.KindName(p.kind) }
func (p payload) KindID() metrics.Kind { return p.kind }

// chattyMachine exercises every event type: random-port pings each
// round, an out-of-range port, a duplicate port, an over-budget
// payload (all CONGEST violations in non-strict mode), and an
// annotation.
type chattyMachine struct {
	rounds int
	done   bool
}

func (m *chattyMachine) Step(env *netsim.Env, round int, inbox []netsim.Delivery) []netsim.Send {
	if round > m.rounds {
		m.done = true
		return nil
	}
	if round == 1 && env.Tracing() {
		env.Annotate(fmt.Sprintf("node %d starting", env.ID))
	}
	p := 1 + env.Rand.Intn(env.N-1)
	out := []netsim.Send{{Port: p, Payload: payload{bits: 8, kind: kindPing}}}
	if env.ID == 1 && round == 2 {
		out = append(out, netsim.Send{Port: env.N + 5, Payload: payload{bits: 8, kind: kindPing}})
	}
	if env.ID == 2 && round == 3 {
		out = append(out, netsim.Send{Port: p, Payload: payload{bits: 8, kind: kindPing}})
	}
	if env.ID == 4 && round == 2 {
		q := p%(env.N-1) + 1
		if q == p {
			q = q%(env.N-1) + 1
		}
		out = append(out, netsim.Send{Port: q, Payload: payload{bits: 100000, kind: kindBig}})
	}
	return out
}

func (m *chattyMachine) Done() bool  { return m.done }
func (m *chattyMachine) Output() any { return nil }

// crashAdv crashes the scheduled nodes, delivering every other message
// of the crash-round outbox so traces contain both sends and drops.
type crashAdv struct{ at map[int]int }

func (a crashAdv) Faulty(u int) bool                              { _, ok := a.at[u]; return ok }
func (a crashAdv) CrashNow(u, round int, _ []netsim.Send) bool    { return a.at[u] == round }
func (a crashAdv) DeliverOnCrash(_, _, i int, _ netsim.Send) bool { return i%2 == 1 }

func testAdv() netsim.Adversary {
	return crashAdv{at: map[int]int{3: 2, 7: 4, 11: 4}}
}

// recordRun executes the chatty workload and returns the recorded trace
// bytes plus the engine result. It fails the test on any recorder error
// or witness mismatch.
func recordRun(t *testing.T, mode netsim.RunMode, workers int, adv netsim.Adversary) ([]byte, *netsim.Result) {
	t.Helper()
	const n = 24
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf, trace.Header{N: n, Seed: 42, Label: "trace-test"})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	machines := make([]netsim.Machine, n)
	for i := range machines {
		machines[i] = &chattyMachine{rounds: 6}
	}
	cfg := netsim.Config{N: n, Alpha: 0.75, Seed: 42, MaxRounds: 10, Workers: workers, Tracer: rec}
	engine, err := netsim.NewEngine(cfg, machines, adv)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	engine.Mode = mode
	res, err := engine.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder Close: %v", err)
	}
	if rec.Digest() != res.Digest {
		t.Fatalf("recorder digest %016x, result digest %016x", rec.Digest(), res.Digest)
	}
	return buf.Bytes(), res
}

// TestCrossEngineTraceEquivalence is the satellite determinism test:
// the same seed and schedule through every engine mode at several
// worker counts must yield byte-identical traces. Run with -race in CI.
func TestCrossEngineTraceEquivalence(t *testing.T) {
	ref, refRes := recordRun(t, netsim.Sequential, 1, testAdv())
	for _, mode := range []netsim.RunMode{netsim.Sequential, netsim.Parallel, netsim.Actors} {
		for _, workers := range []int{0, 1, 2, 3, 7} {
			got, res := recordRun(t, mode, workers, testAdv())
			if res.Digest != refRes.Digest {
				t.Errorf("mode %v workers %d: digest %016x, want %016x", mode, workers, res.Digest, refRes.Digest)
			}
			if !bytes.Equal(got, ref) {
				t.Errorf("mode %v workers %d: trace bytes differ from sequential reference", mode, workers)
			}
		}
	}
}

// TestTraceWitness verifies the recorded stream decodes, re-verifies
// its digest, and reports totals matching the engine's counters.
func TestTraceWitness(t *testing.T) {
	raw, res := recordRun(t, netsim.Parallel, 4, testAdv())
	hdr, evs, footer, err := trace.ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if hdr.N != 24 || hdr.Seed != 42 || hdr.Label != "trace-test" {
		t.Errorf("header = %+v", hdr)
	}
	if footer.Digest != res.Digest {
		t.Errorf("footer digest %016x, result %016x", footer.Digest, res.Digest)
	}
	if footer.Messages != res.Counters.Messages() || footer.Bits != res.Counters.Bits() || footer.Rounds != res.Rounds {
		t.Errorf("footer totals %+v vs counters msgs=%d bits=%d rounds=%d",
			footer, res.Counters.Messages(), res.Counters.Bits(), res.Rounds)
	}
	var sends, drops, crashes, viols, notes int
	for _, ev := range evs {
		switch ev.Op {
		case trace.OpSend:
			sends++
		case trace.OpDrop:
			drops++
		case trace.OpCrash:
			crashes++
		case trace.OpViolation:
			viols++
		case trace.OpAnnotation:
			notes++
		}
	}
	if int64(sends+drops) != footer.Messages {
		t.Errorf("sends %d + drops %d != messages %d", sends, drops, footer.Messages)
	}
	if crashes != 3 {
		t.Errorf("crashes = %d, want 3", crashes)
	}
	if drops == 0 {
		t.Error("expected crash-round drops in the trace")
	}
	if viols != len(res.Violations) {
		t.Errorf("violations = %d, engine recorded %d", viols, len(res.Violations))
	}
	if notes != 24 {
		t.Errorf("annotations = %d, want one per node", notes)
	}
}

// TestTraceRoundTrip re-encodes a decoded trace and requires both
// byte-identical output (the format is canonical) and an equal decode.
func TestTraceRoundTrip(t *testing.T) {
	raw, _ := recordRun(t, netsim.Sequential, 1, testAdv())
	hdr, evs, footer, err := trace.ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, hdr)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, ev := range evs {
		if err := w.Event(ev); err != nil {
			t.Fatalf("re-encode %s: %v", ev, err)
		}
	}
	if err := w.Finish(footer.Rounds, footer.Messages, footer.Bits, footer.Digest); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Error("re-encoded trace is not byte-identical")
	}
	_, evs2, footer2, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll(re-encoded): %v", err)
	}
	if len(evs2) != len(evs) || footer2 != footer {
		t.Errorf("re-encoded decode differs: %d vs %d events", len(evs2), len(evs))
	}
}

// TestDiffIdentical diffs two recordings of the same run.
func TestDiffIdentical(t *testing.T) {
	a, _ := recordRun(t, netsim.Sequential, 1, testAdv())
	b, _ := recordRun(t, netsim.Actors, 4, testAdv())
	div, err := trace.Diff(bytes.NewReader(a), bytes.NewReader(b))
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if div != nil {
		t.Fatalf("unexpected divergence: %s", div)
	}
}

// TestDiffLocalizesCrash diffs a faulty run against the fault-free run
// of the same seed: the first divergence must land exactly on the first
// crashed node in its crash round.
func TestDiffLocalizesCrash(t *testing.T) {
	faulty, _ := recordRun(t, netsim.Sequential, 1, testAdv())
	clean, _ := recordRun(t, netsim.Sequential, 1, nil)
	div, err := trace.Diff(bytes.NewReader(faulty), bytes.NewReader(clean))
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if div == nil {
		t.Fatal("expected a divergence between faulty and fault-free runs")
	}
	if div.Round != 2 {
		t.Errorf("divergence round = %d, want 2 (first crash round): %s", div.Round, div)
	}
	if div.A == nil || div.A.Op != trace.OpCrash || div.A.Node != 3 {
		t.Errorf("divergence should be node 3's crash, got %s", div)
	}
}

// TestTraceCorruption checks the reader degrades to errors, never
// panics, on damaged input.
func TestTraceCorruption(t *testing.T) {
	raw, _ := recordRun(t, netsim.Sequential, 1, testAdv())

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 5, len(raw) / 2, len(raw) - 1} {
			if _, _, _, err := trace.ReadAll(bytes.NewReader(raw[:len(raw)-cut])); err == nil {
				t.Errorf("truncation by %d bytes accepted", cut)
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		for _, pos := range []int{6, len(raw) / 3, len(raw) / 2, len(raw) - 2} {
			mut := append([]byte(nil), raw...)
			mut[pos] ^= 0x40
			if _, _, _, err := trace.ReadAll(bytes.NewReader(mut)); err == nil {
				t.Errorf("bit flip at %d accepted", pos)
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := trace.NewReader(bytes.NewReader(nil)); err == nil {
			t.Error("empty stream accepted")
		}
	})
	t.Run("trailing", func(t *testing.T) {
		mut := append(append([]byte(nil), raw...), 0, 0, 0, 1, 'C')
		if _, _, _, err := trace.ReadAll(bytes.NewReader(mut)); err == nil {
			t.Error("trailing frame accepted")
		}
	})
}

// TestRecorderIncomplete: a strict-mode abort leaves the trace without
// a footer and Close must say so.
func TestRecorderIncomplete(t *testing.T) {
	const n = 8
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf, trace.Header{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	machines := make([]netsim.Machine, n)
	for i := range machines {
		machines[i] = &chattyMachine{rounds: 6}
	}
	cfg := netsim.Config{N: n, Alpha: 1, Seed: 1, MaxRounds: 10, Strict: true, Tracer: rec}
	engine, err := netsim.NewEngine(cfg, machines, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(); err == nil {
		t.Fatal("strict run with violations should abort")
	}
	if err := rec.Close(); err == nil {
		t.Fatal("Close after aborted run should report an incomplete trace")
	}
	if _, _, _, err := trace.ReadAll(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("footerless trace accepted by reader")
	}
}

// TestSummarize spot-checks the aggregation tracectl builds on.
func TestSummarize(t *testing.T) {
	raw, res := recordRun(t, netsim.Parallel, 0, testAdv())
	s, err := trace.Summarize(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if len(s.Rounds) != res.Rounds {
		t.Errorf("summary rounds = %d, want %d", len(s.Rounds), res.Rounds)
	}
	var msgs int64
	for _, r := range s.Rounds {
		msgs += int64(r.Messages())
	}
	if msgs != res.Counters.Messages() {
		t.Errorf("summary messages = %d, counters say %d", msgs, res.Counters.Messages())
	}
	if len(s.Crashes) != 3 {
		t.Errorf("summary crashes = %v, want 3 entries", s.Crashes)
	}
	if s.KindCounts["trace-ping"] == 0 || s.KindCounts["trace-big"] == 0 {
		t.Errorf("kind counts missing entries: %v", s.KindCounts)
	}
	if got := s.KindsByCount(); len(got) != 2 || got[0] != "trace-ping" {
		t.Errorf("KindsByCount = %v", got)
	}
}

// TestReaderStreams ensures Next yields the same sequence ReadAll does
// and terminates with io.EOF exactly once the footer is verified.
func TestReaderStreams(t *testing.T) {
	raw, _ := recordRun(t, netsim.Sequential, 1, testAdv())
	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Footer(); ok {
		t.Error("footer available before EOF")
	}
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next after %d events: %v", n, err)
		}
		n++
	}
	f, ok := r.Footer()
	if !ok || int64(n) != f.Events {
		t.Errorf("streamed %d events, footer says %d (ok=%v)", n, f.Events, ok)
	}
}
