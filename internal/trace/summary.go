package trace

import (
	"io"
	"sort"
)

// RoundStat aggregates one round of a trace.
type RoundStat struct {
	Round       int
	Sends       int
	Drops       int
	Crashes     int
	Violations  int
	Annotations int
	Bits        int64
}

// Messages is the round's counted messages (sends + crash-round drops).
func (r RoundStat) Messages() int { return r.Sends + r.Drops }

// Crash is one crash decision.
type Crash struct {
	Node, Round int
}

// Summary is a full pass over a trace: per-round statistics, the
// per-kind message breakdown, and the crash schedule. Because the
// reader verifies structure and digest while streaming, holding a
// Summary implies the trace was a valid witness.
type Summary struct {
	Header  Header
	Footer  Footer
	Rounds  []RoundStat
	Crashes []Crash
	// KindCounts maps kind name to counted messages of that kind.
	KindCounts map[string]int64
}

// Summarize streams an entire trace and aggregates it. Any structural,
// cap, or witness error surfaces unchanged from the Reader.
func Summarize(src io.Reader) (*Summary, error) {
	r, err := NewReader(src)
	if err != nil {
		return nil, err
	}
	s := &Summary{Header: r.Header(), KindCounts: make(map[string]int64)}
	var cur *RoundStat
	for {
		ev, err := r.Next()
		if err == io.EOF {
			s.Footer, _ = r.Footer()
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		switch ev.Op {
		case OpRound:
			s.Rounds = append(s.Rounds, RoundStat{Round: ev.Round})
			cur = &s.Rounds[len(s.Rounds)-1]
		case OpSend:
			cur.Sends++
			cur.Bits += int64(ev.Bits)
			s.KindCounts[ev.Kind]++
		case OpDrop:
			cur.Drops++
			cur.Bits += int64(ev.Bits)
			s.KindCounts[ev.Kind]++
		case OpCrash:
			cur.Crashes++
			s.Crashes = append(s.Crashes, Crash{Node: ev.Node, Round: ev.Round})
		case OpViolation:
			cur.Violations++
		case OpAnnotation:
			cur.Annotations++
		}
	}
}

// KindsByCount returns the kind names sorted by descending message
// count (ties by name), for stable tabular output.
func (s *Summary) KindsByCount() []string {
	names := make([]string, 0, len(s.KindCounts))
	for k := range s.KindCounts {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		if s.KindCounts[names[i]] != s.KindCounts[names[j]] {
			return s.KindCounts[names[i]] > s.KindCounts[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
