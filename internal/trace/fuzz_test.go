package trace_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sublinear/internal/netsim"
	"sublinear/internal/trace"
)

// FuzzTraceRead mirrors internal/wire's FuzzReadFrame for the trace
// format: the reader must never panic on arbitrary bytes (its caps keep
// allocations bounded by input actually present, not declared lengths),
// and any stream it accepts must re-encode through the Writer into a
// byte-identical trace — the format is canonical, and acceptance
// implies the digest witness verified.
func FuzzTraceRead(f *testing.F) {
	// Seed corpus: real recorded traces (fault-free and crashing, with
	// violations and annotations), plus truncations and header-only
	// prefixes. The committed corpus under testdata/fuzz mirrors these.
	seeds := fuzzSeedTraces(f)
	for _, s := range seeds {
		f.Add(s)
		if len(s) > 8 {
			f.Add(s[:len(s)/2])
			f.Add(s[:8])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("SLTR"))
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, evs, footer, err := trace.ReadAll(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking or ballooning is not
		}
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, hdr)
		if err != nil {
			t.Fatalf("accepted header rejected by writer: %+v: %v", hdr, err)
		}
		for _, ev := range evs {
			if err := w.Event(ev); err != nil {
				t.Fatalf("accepted event rejected by writer: %s: %v", ev, err)
			}
		}
		if err := w.Finish(footer.Rounds, footer.Messages, footer.Bits, footer.Digest); err != nil {
			t.Fatalf("accepted footer rejected by writer: %+v: %v", footer, err)
		}
		hdr2, evs2, footer2, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace does not read back: %v", err)
		}
		if hdr2 != hdr || footer2 != footer || len(evs2) != len(evs) {
			t.Fatalf("round-trip mismatch: %+v vs %+v, %+v vs %+v, %d vs %d events",
				hdr2, hdr, footer2, footer, len(evs2), len(evs))
		}
		for i := range evs {
			if evs[i] != evs2[i] {
				t.Fatalf("event %d changed across round-trip: %s vs %s", i, evs[i], evs2[i])
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzTraceRead. Gated behind an env var: run it after
// any format or digest-schema change, in the same commit:
//
//	TRACE_WRITE_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/trace/
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("TRACE_WRITE_CORPUS") == "" {
		t.Skip("set TRACE_WRITE_CORPUS=1 to regenerate the committed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzTraceRead")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seeds := fuzzSeedTraces(t)
	for i, s := range seeds {
		write(fmt.Sprintf("seed-trace-%d", i), s)
		write(fmt.Sprintf("seed-trunc-%d", i), s[:len(s)/2])
	}
	write("seed-header", seeds[0][:8])
	write("seed-empty", nil)
}

// fuzzSeedTraces records small real executions to seed the corpus.
func fuzzSeedTraces(f testing.TB) [][]byte {
	f.Helper()
	var out [][]byte
	for _, adv := range []netsim.Adversary{nil, crashAdv{at: map[int]int{2: 2}}} {
		const n = 8
		var buf bytes.Buffer
		rec, err := trace.NewRecorder(&buf, trace.Header{N: n, Seed: 7, Label: "fuzz-seed"})
		if err != nil {
			f.Fatal(err)
		}
		machines := make([]netsim.Machine, n)
		for i := range machines {
			machines[i] = &chattyMachine{rounds: 3}
		}
		cfg := netsim.Config{N: n, Alpha: 0.75, Seed: 7, MaxRounds: 5, Tracer: rec}
		engine, err := netsim.NewEngine(cfg, machines, adv)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := engine.Run(); err != nil {
			f.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			f.Fatal(err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}
