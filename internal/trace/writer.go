package trace

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"

	"sublinear/internal/metrics"
	"sublinear/internal/netsim"
	"sublinear/internal/wire"
)

// Writer encodes an event stream into the trace format. It performs the
// same structural validation the reader does (ordering, caps), so any
// stream a Reader accepted re-encodes without error — the round-trip
// property FuzzTraceRead leans on. Most callers want Recorder, which
// adds the digest witness; Writer is the re-encoding half (tracectl
// export, fuzz harness).
type Writer struct {
	dst   io.Writer
	rec   []byte // pending uncompressed records
	frame []byte // reusable frame build buffer
	gz    *gzip.Writer
	gzBuf bytes.Buffer

	header Header
	kinds  map[string]uint64
	round  int
	node   int
	events int64
	done   bool
	err    error
}

// NewWriter writes the header frame and returns a Writer. The caller
// fills Header.N, Seed, and Label; Version and DigestSchema are stamped
// by the writer.
func NewWriter(dst io.Writer, h Header) (*Writer, error) {
	if h.N < 2 || h.N > maxN {
		return nil, fmt.Errorf("trace: header n=%d out of range [2,%d]", h.N, maxN)
	}
	if len(h.Label) > maxLabel {
		return nil, fmt.Errorf("trace: label %d bytes, cap %d", len(h.Label), maxLabel)
	}
	w := &Writer{dst: dst, kinds: make(map[string]uint64)}
	body := append([]byte{frameHeader}, traceMagic...)
	body = wire.AppendUvarint(body, FormatVersion)
	body = wire.AppendUvarint(body, netsim.DigestSchemaVersion)
	body = wire.AppendUvarint(body, uint64(h.N))
	body = wire.AppendUvarint(body, h.Seed)
	body = wire.AppendUvarint(body, uint64(len(h.Label)))
	body = append(body, h.Label...)
	if err := wire.WriteFrame(dst, body); err != nil {
		return nil, err
	}
	h.Version = FormatVersion
	h.DigestSchema = netsim.DigestSchemaVersion
	w.header = h
	return w, nil
}

// Round opens round r. Rounds must strictly increase.
func (w *Writer) Round(r int) error {
	if w.err != nil {
		return w.err
	}
	if r <= w.round || r > maxRounds {
		return w.fail(fmt.Errorf("trace: round %d after round %d", r, w.round))
	}
	w.rec = append(w.rec, opRound)
	w.rec = wire.AppendUvarint(w.rec, uint64(r-w.round))
	w.round, w.node = r, 0
	w.events++
	return w.flushMaybe()
}

// Send records a delivered message.
func (w *Writer) Send(node, port int, kind string, bits int) error {
	return w.message(opSend, node, port, kind, bits)
}

// Drop records a message lost to the sender's crash.
func (w *Writer) Drop(node, port int, kind string, bits int) error {
	return w.message(opDrop, node, port, kind, bits)
}

func (w *Writer) message(op byte, node, port int, kind string, bits int) error {
	if w.err != nil {
		return w.err
	}
	if err := w.checkNode(node); err != nil {
		return err
	}
	if port < 1 || port >= w.header.N {
		return w.fail(fmt.Errorf("trace: message port %d out of range for n=%d", port, w.header.N))
	}
	if bits < 0 || bits > maxScalar {
		return w.fail(fmt.Errorf("trace: message size %d bits out of range", bits))
	}
	kid, ok := w.kinds[kind]
	if !ok {
		// Define the kind immediately before its first use — the
		// canonical (and only accepted) position.
		if len(kind) == 0 || len(kind) > maxKindName {
			return w.fail(fmt.Errorf("trace: kind name %d bytes, cap %d", len(kind), maxKindName))
		}
		if len(w.kinds) >= maxKinds {
			return w.fail(fmt.Errorf("trace: more than %d distinct kinds", maxKinds))
		}
		kid = uint64(len(w.kinds))
		w.kinds[kind] = kid
		w.rec = append(w.rec, opKind)
		w.rec = wire.AppendUvarint(w.rec, uint64(len(kind)))
		w.rec = append(w.rec, kind...)
	}
	w.rec = append(w.rec, op)
	w.rec = wire.AppendUvarint(w.rec, uint64(node-w.node))
	w.rec = wire.AppendUvarint(w.rec, uint64(port))
	w.rec = wire.AppendUvarint(w.rec, kid)
	w.rec = wire.AppendUvarint(w.rec, uint64(bits))
	w.node = node
	w.events++
	return w.flushMaybe()
}

// Crash records a node's crash in the current round.
func (w *Writer) Crash(node int) error {
	if w.err != nil {
		return w.err
	}
	if err := w.checkNode(node); err != nil {
		return err
	}
	w.rec = append(w.rec, opCrash)
	w.rec = wire.AppendUvarint(w.rec, uint64(node-w.node))
	w.node = node
	w.events++
	return w.flushMaybe()
}

// Violation records a CONGEST violation. port may be out of range (that
// being the violation) but must be non-negative.
func (w *Writer) Violation(node, port int, reason string) error {
	return w.text(opViolation, node, port, reason)
}

// Annotation records a protocol-state note.
func (w *Writer) Annotation(node int, text string) error {
	return w.text(opAnnotation, node, 0, text)
}

func (w *Writer) text(op byte, node, port int, s string) error {
	if w.err != nil {
		return w.err
	}
	if err := w.checkNode(node); err != nil {
		return err
	}
	if port < 0 || port > maxScalar {
		return w.fail(fmt.Errorf("trace: violation port %d out of range", port))
	}
	if len(s) > maxText {
		return w.fail(fmt.Errorf("trace: text %d bytes, cap %d", len(s), maxText))
	}
	w.rec = append(w.rec, op)
	w.rec = wire.AppendUvarint(w.rec, uint64(node-w.node))
	if op == opViolation {
		w.rec = wire.AppendUvarint(w.rec, uint64(port))
	}
	w.rec = wire.AppendUvarint(w.rec, uint64(len(s)))
	w.rec = append(w.rec, s...)
	w.node = node
	w.events++
	return w.flushMaybe()
}

// Event re-encodes one decoded event, dispatching on its op. Round
// transitions are driven by OpRound events, so replaying a Reader's
// event sequence reproduces an equivalent trace.
func (w *Writer) Event(ev Event) error {
	switch ev.Op {
	case OpRound:
		return w.Round(ev.Round)
	case OpSend:
		return w.Send(ev.Node, ev.Port, ev.Kind, ev.Bits)
	case OpDrop:
		return w.Drop(ev.Node, ev.Port, ev.Kind, ev.Bits)
	case OpCrash:
		return w.Crash(ev.Node)
	case OpViolation:
		return w.Violation(ev.Node, ev.Port, ev.Text)
	case OpAnnotation:
		return w.Annotation(ev.Node, ev.Text)
	}
	return w.fail(fmt.Errorf("trace: unknown event op %d", ev.Op))
}

// Finish flushes pending records and writes the footer. Rounds,
// messages, bits, and digest come from the run (TraceFinish); the event
// and kind counts are the writer's own tallies.
func (w *Writer) Finish(rounds int, messages, bits int64, digest uint64) error {
	if w.err != nil {
		return w.err
	}
	if w.done {
		return w.fail(fmt.Errorf("trace: Finish called twice"))
	}
	if rounds != w.round {
		return w.fail(fmt.Errorf("trace: footer rounds %d, last recorded round %d", rounds, w.round))
	}
	if messages < 0 || bits < 0 {
		return w.fail(fmt.Errorf("trace: negative footer totals"))
	}
	if err := w.flush(); err != nil {
		return err
	}
	body := append(w.frame[:0], frameFooter)
	body = wire.AppendUvarint(body, uint64(rounds))
	body = wire.AppendUvarint(body, uint64(messages))
	body = wire.AppendUvarint(body, uint64(bits))
	body = wire.AppendUvarint(body, uint64(w.events))
	body = wire.AppendUvarint(body, uint64(len(w.kinds)))
	body = wire.AppendUvarint(body, digest)
	if err := wire.WriteFrame(w.dst, body); err != nil {
		return w.fail(err)
	}
	w.done = true
	return nil
}

func (w *Writer) checkNode(node int) error {
	if w.round == 0 {
		return w.fail(fmt.Errorf("trace: event before first round"))
	}
	if node < w.node || node >= w.header.N {
		return w.fail(fmt.Errorf("trace: node %d after node %d (n=%d)", node, w.node, w.header.N))
	}
	return nil
}

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

func (w *Writer) flushMaybe() error {
	if len(w.rec) < chunkFlush {
		return nil
	}
	return w.flush()
}

// flush compresses pending records into one chunk frame.
func (w *Writer) flush() error {
	if len(w.rec) == 0 {
		return nil
	}
	w.gzBuf.Reset()
	w.gzBuf.WriteByte(frameChunk)
	if w.gz == nil {
		// BestSpeed: traces are written on the engine's coordination
		// thread; the varint delta coding has already done the heavy
		// size lifting.
		w.gz, _ = gzip.NewWriterLevel(&w.gzBuf, gzip.BestSpeed)
	} else {
		w.gz.Reset(&w.gzBuf)
	}
	if _, err := w.gz.Write(w.rec); err != nil {
		return w.fail(err)
	}
	if err := w.gz.Close(); err != nil {
		return w.fail(err)
	}
	w.rec = w.rec[:0]
	if err := wire.WriteFrame(w.dst, w.gzBuf.Bytes()); err != nil {
		return w.fail(err)
	}
	return nil
}

// Recorder is the netsim.Tracer implementation: a Writer plus the
// digest witness. It recomputes the execution digest from the events it
// is handed (netsim.DigestAccumulator) and fails at Close if the
// engine's TraceFinish digest disagrees — a recorded trace is either a
// faithful witness of the run or an error, never silently wrong.
//
// The Tracer interface returns no errors, so failures (I/O, witness
// mismatch) are latched and surfaced by Close.
type Recorder struct {
	w        *Writer
	acc      *netsim.DigestAccumulator
	err      error
	finished bool
	digest   uint64
}

// NewRecorder writes the trace header and returns a Recorder ready to
// be installed as netsim.Config.Tracer.
func NewRecorder(dst io.Writer, h Header) (*Recorder, error) {
	w, err := NewWriter(dst, h)
	if err != nil {
		return nil, err
	}
	return &Recorder{w: w, acc: netsim.NewDigestAccumulator()}, nil
}

// TraceRound implements netsim.Tracer.
func (r *Recorder) TraceRound(round int) {
	r.note(r.w.Round(round))
	r.acc.Round(round)
}

// TraceCrash implements netsim.Tracer.
func (r *Recorder) TraceCrash(node, round int) {
	r.note(r.w.Crash(node))
	r.acc.Crash(node, round)
}

// TraceMessage implements netsim.Tracer.
func (r *Recorder) TraceMessage(sender, round, port int, kind metrics.Kind, bits int, dropped bool) {
	name := metrics.KindName(kind)
	if dropped {
		r.note(r.w.Drop(sender, port, name, bits))
	} else {
		r.note(r.w.Send(sender, port, name, bits))
	}
	r.acc.Message(sender, port, metrics.KindHash(kind), bits, dropped)
}

// TraceViolation implements netsim.Tracer.
func (r *Recorder) TraceViolation(node, round int, reason string) {
	port := 0 // the reason string carries the specifics
	r.note(r.w.Violation(node, port, reason))
}

// TraceAnnotation implements netsim.Tracer.
func (r *Recorder) TraceAnnotation(node, round int, text string) {
	r.note(r.w.Annotation(node, text))
}

// TraceFinish implements netsim.Tracer: it checks the witness and
// writes the footer.
func (r *Recorder) TraceFinish(rounds int, messages, bits int64, digest uint64) {
	if computed := r.acc.Sum(rounds, messages, bits); computed != digest {
		r.note(fmt.Errorf("trace: witness mismatch: recomputed digest %016x, engine digest %016x", computed, digest))
		return
	}
	r.digest = digest
	r.finished = true
	r.note(r.w.Finish(rounds, messages, bits, digest))
}

// Digest returns the verified execution digest; valid after a
// successful Close.
func (r *Recorder) Digest() uint64 { return r.digest }

// Close surfaces the first recording error. A run that aborted before
// TraceFinish (strict-mode violation) yields ErrIncomplete: the trace
// stream has no footer and will not read back.
func (r *Recorder) Close() error {
	if r.err != nil {
		return r.err
	}
	if !r.finished {
		return ErrIncomplete
	}
	return nil
}

func (r *Recorder) note(err error) {
	if err != nil && r.err == nil {
		r.err = err
	}
}
