// Package trace is the execution flight recorder: it captures the typed
// event stream a netsim run emits through the Config.Tracer hook — round
// boundaries, every counted message (sender, port, kind, bits,
// delivered-or-dropped), crash decisions, CONGEST violations, and
// protocol annotations — and streams it to a compact chunked binary
// format that can be inspected, diffed, and re-verified after the fact
// (cmd/tracectl).
//
// # Format
//
// A trace is a sequence of length-prefixed frames (internal/wire: 4-byte
// big-endian length, body capped at wire.MaxFrame). The first body byte
// is the frame type:
//
//	'H'  header: magic "SLTR", then uvarints for format version, digest
//	     schema, n, seed, and a length-prefixed label.
//	'C'  chunk: one gzip stream of event records (below).
//	'F'  footer: uvarints for rounds, messages, bits, events, kinds,
//	     and the execution digest.
//
// Records inside a chunk are delta-coded varints, one opcode byte each:
// round records carry the round delta (rounds strictly increase); every
// node-bearing record carries the delta from the previous node of the
// round, which is non-negative because the engine emits events in
// ascending node order at the round barrier. Kind names appear once, in
// a kind-definition record immediately before their first use, and are
// referenced by dense local id afterwards — the on-disk mirror of the
// in-process interned kind table (internal/metrics).
//
// # Digest as witness
//
// The footer digest must equal netsim.Result.Digest. The recorder
// recomputes the digest from the events it is handed
// (netsim.DigestAccumulator, the engine's exact fold order) and fails if
// the engine's TraceFinish digest disagrees; the reader recomputes it
// again from the decoded events and rejects any trace whose footer
// digest does not match. A trace that reads successfully is therefore a
// checkable witness: it describes exactly the communication the engine
// performed, byte-for-byte identical across the Sequential, Parallel,
// and Actors engines at any worker count.
package trace

import (
	"errors"
	"fmt"
)

// FormatVersion identifies the frame/record encoding.
const FormatVersion = 1

// Frame type bytes.
const (
	frameHeader = 'H'
	frameChunk  = 'C'
	frameFooter = 'F'
)

// traceMagic opens the header body, so a trace file is recognizable even
// without its extension.
const traceMagic = "SLTR"

// Record opcodes. Event-bearing opcodes coincide with the exported Op
// values; opKind is an encoding detail (kind-table definition) and never
// surfaces as an Event.
const (
	opRound      = byte(OpRound)
	opSend       = byte(OpSend)
	opDrop       = byte(OpDrop)
	opCrash      = byte(OpCrash)
	opViolation  = byte(OpViolation)
	opAnnotation = byte(OpAnnotation)
	opKind       = 7
)

// Decoder hardening caps. The reader allocates nothing proportional to a
// declared size beyond these, so arbitrary input cannot balloon memory;
// the writer enforces the same caps so every accepted trace re-encodes.
const (
	maxN        = 1 << 24 // nodes
	maxRounds   = 1 << 24 // round numbers
	maxKinds    = 1 << 16 // distinct kind names per trace
	maxKindName = 128     // bytes per kind name
	maxText     = 4096    // bytes per annotation / violation reason
	maxLabel    = 256     // bytes of header label
	maxScalar   = 1<<31 - 1
	// chunkFlush is the writer's uncompressed flush threshold. Compressed
	// chunks stay far below wire.MaxFrame even on incompressible input.
	chunkFlush = 64 << 10
)

// ErrIncomplete reports a trace stream that ended before its footer.
var ErrIncomplete = errors.New("trace: truncated trace (no footer)")

// Op identifies an event's type.
type Op uint8

// Event types, in the order the engine emits them within a round.
const (
	// OpRound marks the start of a round.
	OpRound Op = iota + 1
	// OpSend is a message counted and delivered.
	OpSend
	// OpDrop is a message counted but lost to the sender's crash.
	OpDrop
	// OpCrash marks a node's crash round.
	OpCrash
	// OpViolation is a CONGEST violation attributed to a node.
	OpViolation
	// OpAnnotation is a protocol-state note (netsim.Env.Annotate).
	OpAnnotation
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpRound:
		return "round"
	case OpSend:
		return "send"
	case OpDrop:
		return "drop"
	case OpCrash:
		return "crash"
	case OpViolation:
		return "violation"
	case OpAnnotation:
		return "annotation"
	}
	return fmt.Sprintf("op#%d", uint8(o))
}

// Event is one decoded trace event. Events are plain comparable values;
// two traces are equivalent iff their event sequences (and headers) are
// equal.
type Event struct {
	Op    Op
	Round int
	// Node is the sender (OpSend/OpDrop), the crashed node (OpCrash), or
	// the attributed node (OpViolation/OpAnnotation). Unused for OpRound.
	Node int
	// Port is the sender's local port (OpSend/OpDrop) or the offending
	// port of a violation, which may be out of range — that being the
	// violation.
	Port int
	// Bits is the payload size (OpSend/OpDrop).
	Bits int
	// Kind is the message kind name (OpSend/OpDrop).
	Kind string
	// Text is the violation reason or annotation text.
	Text string
}

// String renders the event for tracectl and diff output.
func (e Event) String() string {
	switch e.Op {
	case OpRound:
		return fmt.Sprintf("round %d", e.Round)
	case OpSend:
		return fmt.Sprintf("r%d node %d send port %d kind %s %db", e.Round, e.Node, e.Port, e.Kind, e.Bits)
	case OpDrop:
		return fmt.Sprintf("r%d node %d DROP port %d kind %s %db (crash)", e.Round, e.Node, e.Port, e.Kind, e.Bits)
	case OpCrash:
		return fmt.Sprintf("r%d node %d CRASH", e.Round, e.Node)
	case OpViolation:
		return fmt.Sprintf("r%d node %d violation: %s", e.Round, e.Node, e.Text)
	case OpAnnotation:
		return fmt.Sprintf("r%d node %d note: %s", e.Round, e.Node, e.Text)
	}
	return fmt.Sprintf("r%d node %d %s", e.Round, e.Node, e.Op)
}

// Header identifies the run a trace records.
type Header struct {
	// Version is the trace format version (FormatVersion).
	Version int
	// DigestSchema is netsim.DigestSchemaVersion at record time; traces
	// recorded under different schemas are never comparable.
	DigestSchema int
	// N is the network size.
	N int
	// Seed is the run seed.
	Seed uint64
	// Label is a free-form run description ("election n=64", a dst case
	// name, a simd job key). Not compared by Diff.
	Label string
}

// Footer carries the run totals and the execution digest.
type Footer struct {
	// Rounds is the number of rounds executed (netsim.Result.Rounds).
	Rounds int
	// Messages and Bits are the run totals, counting dropped messages
	// (the paper counts messages sent, not delivered).
	Messages int64
	Bits     int64
	// Events is the number of events in the trace, across all types.
	Events int64
	// Kinds is the size of the trace's kind table.
	Kinds int
	// Digest is the execution digest (netsim.Result.Digest); readers
	// recompute it from the event stream and reject mismatches.
	Digest uint64
}
