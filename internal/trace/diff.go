package trace

import (
	"fmt"
	"io"
)

// Divergence pinpoints the first difference between two traces: the
// ordinal of the first event that differs (0-based, counting all event
// types), the round it happened in, and the two events. A nil event
// means that side's trace ended first.
type Divergence struct {
	// Index is the event ordinal of the divergence, or -1 for a header
	// mismatch (incomparable traces).
	Index int64
	// Round is the round of whichever event exists (A preferred).
	Round int
	// A and B are the first differing events.
	A, B *Event
	// Reason names what differs.
	Reason string
}

// String renders the divergence for tracectl output.
func (d *Divergence) String() string {
	if d.Index < 0 {
		return fmt.Sprintf("header mismatch: %s", d.Reason)
	}
	fa, fb := "(trace ended)", "(trace ended)"
	if d.A != nil {
		fa = d.A.String()
	}
	if d.B != nil {
		fb = d.B.String()
	}
	return fmt.Sprintf("first divergence at event %d (round %d): %s\n  a: %s\n  b: %s", d.Index, d.Round, d.Reason, fa, fb)
}

// Diff streams two traces in lockstep and returns the first divergent
// event, or nil if the traces are equivalent (equal headers modulo
// label, and identical event sequences). Because both readers verify
// their digest witness, equal event streams imply equal digests; the
// deterministic engines guarantee the converse, which is what makes
// "diff two traces" the same question as "did these runs perform the
// same execution".
func Diff(a, b io.Reader) (*Divergence, error) {
	ra, err := NewReader(a)
	if err != nil {
		return nil, fmt.Errorf("trace a: %w", err)
	}
	rb, err := NewReader(b)
	if err != nil {
		return nil, fmt.Errorf("trace b: %w", err)
	}
	ha, hb := ra.Header(), rb.Header()
	switch {
	case ha.N != hb.N:
		return &Divergence{Index: -1, Reason: fmt.Sprintf("n=%d vs n=%d", ha.N, hb.N)}, nil
	case ha.DigestSchema != hb.DigestSchema:
		return &Divergence{Index: -1, Reason: fmt.Sprintf("digest schema %d vs %d", ha.DigestSchema, hb.DigestSchema)}, nil
	case ha.Seed != hb.Seed:
		return &Divergence{Index: -1, Reason: fmt.Sprintf("seed %d vs %d", ha.Seed, hb.Seed)}, nil
	}
	var idx int64
	for {
		ea, errA := ra.Next()
		eb, errB := rb.Next()
		endA, endB := errA == io.EOF, errB == io.EOF
		if errA != nil && !endA {
			return nil, fmt.Errorf("trace a: %w", errA)
		}
		if errB != nil && !endB {
			return nil, fmt.Errorf("trace b: %w", errB)
		}
		switch {
		case endA && endB:
			return nil, nil
		case endA:
			return &Divergence{Index: idx, Round: eb.Round, B: &eb, Reason: "trace a ended first"}, nil
		case endB:
			return &Divergence{Index: idx, Round: ea.Round, A: &ea, Reason: "trace b ended first"}, nil
		}
		if ea != eb {
			return &Divergence{Index: idx, Round: ea.Round, A: &ea, B: &eb, Reason: describe(ea, eb)}, nil
		}
		idx++
	}
}

// describe names the first field that differs between two events.
func describe(a, b Event) string {
	switch {
	case a.Op != b.Op:
		return fmt.Sprintf("event type %s vs %s", a.Op, b.Op)
	case a.Round != b.Round:
		return fmt.Sprintf("round %d vs %d", a.Round, b.Round)
	case a.Node != b.Node:
		return fmt.Sprintf("node %d vs %d", a.Node, b.Node)
	case a.Port != b.Port:
		return fmt.Sprintf("port %d vs %d", a.Port, b.Port)
	case a.Kind != b.Kind:
		return fmt.Sprintf("kind %q vs %q", a.Kind, b.Kind)
	case a.Bits != b.Bits:
		return fmt.Sprintf("size %db vs %db", a.Bits, b.Bits)
	default:
		return fmt.Sprintf("text %q vs %q", a.Text, b.Text)
	}
}
