package trace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"

	"sublinear/internal/metrics"
	"sublinear/internal/netsim"
	"sublinear/internal/wire"
)

// Reader streams events out of a trace. It validates as it goes —
// ordering, caps, the kind table's canonical layout, and finally the
// footer totals and the digest witness — so a stream that reads to EOF
// without error is a verified record of a real execution. Memory use is
// bounded by the decode caps, never by declared sizes in the input:
// arbitrary bytes cannot make the reader panic or balloon allocations
// (FuzzTraceRead).
type Reader struct {
	src      io.Reader
	frameBuf []byte

	hdr    Header
	footer Footer
	done   bool

	gz      *gzip.Reader
	br      *bufio.Reader
	body    *bytes.Reader
	inChunk bool

	kinds      []string
	kindHashes []uint64
	// pendingKind, when >= 0, is a freshly defined kind id that the very
	// next record must use — the canonical table layout the writer
	// produces, enforced so accepted traces re-encode identically.
	pendingKind int

	acc    *netsim.DigestAccumulator
	round  int
	node   int
	events int64
	msgs   int64
	bits   int64
}

// NewReader parses the header frame.
func NewReader(src io.Reader) (*Reader, error) {
	r := &Reader{src: src, pendingKind: -1, acc: netsim.NewDigestAccumulator()}
	body, err := wire.ReadFrame(src, nil)
	if err != nil {
		if err == io.EOF {
			return nil, ErrIncomplete
		}
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(body) < 1+len(traceMagic) || body[0] != frameHeader || string(body[1:1+len(traceMagic)]) != traceMagic {
		return nil, errors.New("trace: not a trace stream (bad magic)")
	}
	b := body[1+len(traceMagic):]
	var version, schema, n, seed, labelLen uint64
	for _, dst := range []*uint64{&version, &schema, &n, &seed, &labelLen} {
		if *dst, b, err = wire.Uvarint(b); err != nil {
			return nil, fmt.Errorf("trace: header: %w", err)
		}
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("trace: format version %d, this reader speaks %d", version, FormatVersion)
	}
	if schema != netsim.DigestSchemaVersion {
		// The witness recompute runs the current digest schema; a trace
		// recorded under another schema cannot be verified, only mislead.
		return nil, fmt.Errorf("trace: digest schema %d, this build speaks %d", schema, netsim.DigestSchemaVersion)
	}
	if n < 2 || n > maxN {
		return nil, fmt.Errorf("trace: header n=%d out of range [2,%d]", n, maxN)
	}
	if labelLen > maxLabel || int(labelLen) != len(b) {
		return nil, fmt.Errorf("trace: header label length %d does not match body", labelLen)
	}
	r.hdr = Header{
		Version:      int(version),
		DigestSchema: int(schema),
		N:            int(n),
		Seed:         seed,
		Label:        string(b),
	}
	return r, nil
}

// Header returns the trace header.
func (r *Reader) Header() Header { return r.hdr }

// Footer returns the trace footer; valid once Next has returned io.EOF.
func (r *Reader) Footer() (Footer, bool) { return r.footer, r.done }

// Kinds returns the kind names decoded so far, indexed by local id.
func (r *Reader) Kinds() []string { return r.kinds }

// Next returns the next event. It returns io.EOF after the footer has
// been read and verified; any other error means the trace is corrupt,
// truncated, or not a faithful witness (digest mismatch).
func (r *Reader) Next() (Event, error) {
	if r.done {
		return Event{}, io.EOF
	}
	for {
		if !r.inChunk {
			if err := r.nextFrame(); err != nil {
				return Event{}, err
			}
			if r.done {
				return Event{}, io.EOF
			}
			continue
		}
		op, err := r.br.ReadByte()
		if err == io.EOF {
			r.inChunk = false
			continue
		}
		if err != nil {
			return Event{}, fmt.Errorf("trace: chunk: %w", err)
		}
		ev, ok, err := r.record(op)
		if err != nil {
			return Event{}, err
		}
		if ok {
			return ev, nil
		}
		// Kind definition: not an event, keep decoding.
	}
}

// nextFrame advances to the next chunk or parses the footer.
func (r *Reader) nextFrame() error {
	body, err := wire.ReadFrame(r.src, r.frameBuf)
	if err != nil {
		if err == io.EOF {
			return ErrIncomplete
		}
		return fmt.Errorf("trace: %w", err)
	}
	r.frameBuf = body[:0]
	if len(body) == 0 {
		return errors.New("trace: empty frame")
	}
	switch body[0] {
	case frameChunk:
		if r.body == nil {
			r.body = bytes.NewReader(body[1:])
		} else {
			r.body.Reset(body[1:])
		}
		if r.gz == nil {
			gz, err := gzip.NewReader(r.body)
			if err != nil {
				return fmt.Errorf("trace: chunk: %w", err)
			}
			r.gz = gz
		} else if err := r.gz.Reset(r.body); err != nil {
			return fmt.Errorf("trace: chunk: %w", err)
		}
		r.gz.Multistream(false)
		if r.br == nil {
			r.br = bufio.NewReader(r.gz)
		} else {
			r.br.Reset(r.gz)
		}
		r.inChunk = true
		return nil
	case frameFooter:
		return r.parseFooter(body[1:])
	case frameHeader:
		return errors.New("trace: duplicate header frame")
	default:
		return fmt.Errorf("trace: unknown frame type %q", body[0])
	}
}

func (r *Reader) parseFooter(b []byte) error {
	if r.pendingKind >= 0 {
		return errors.New("trace: kind defined but never used")
	}
	var rounds, messages, bits, events, kinds, digest uint64
	var err error
	for _, dst := range []*uint64{&rounds, &messages, &bits, &events, &kinds, &digest} {
		if *dst, b, err = wire.Uvarint(b); err != nil {
			return fmt.Errorf("trace: footer: %w", err)
		}
	}
	if len(b) != 0 {
		return errors.New("trace: trailing bytes in footer")
	}
	f := Footer{
		Rounds:   int(rounds),
		Messages: int64(messages),
		Bits:     int64(bits),
		Events:   int64(events),
		Kinds:    int(kinds),
		Digest:   digest,
	}
	switch {
	case f.Rounds != r.round:
		return fmt.Errorf("trace: footer rounds %d, stream recorded %d", f.Rounds, r.round)
	case f.Messages != r.msgs:
		return fmt.Errorf("trace: footer messages %d, stream recorded %d", f.Messages, r.msgs)
	case f.Bits != r.bits:
		return fmt.Errorf("trace: footer bits %d, stream recorded %d", f.Bits, r.bits)
	case f.Events != r.events:
		return fmt.Errorf("trace: footer events %d, stream recorded %d", f.Events, r.events)
	case f.Kinds != len(r.kinds):
		return fmt.Errorf("trace: footer kinds %d, stream defined %d", f.Kinds, len(r.kinds))
	}
	if computed := r.acc.Sum(f.Rounds, f.Messages, f.Bits); computed != f.Digest {
		return fmt.Errorf("trace: witness mismatch: recomputed digest %016x, footer claims %016x", computed, f.Digest)
	}
	// The footer is the last frame; trailing data means corruption.
	if _, err := wire.ReadFrame(r.src, r.frameBuf); err != io.EOF {
		return errors.New("trace: trailing data after footer")
	}
	r.footer = f
	r.done = true
	return nil
}

// record decodes one record. ok is false for kind definitions, which
// are table updates rather than events.
func (r *Reader) record(op byte) (Event, bool, error) {
	if r.pendingKind >= 0 && op != opSend && op != opDrop {
		return Event{}, false, errors.New("trace: kind definition not followed by its first use")
	}
	switch op {
	case opKind:
		if r.pendingKind >= 0 {
			return Event{}, false, errors.New("trace: consecutive kind definitions")
		}
		if len(r.kinds) >= maxKinds {
			return Event{}, false, fmt.Errorf("trace: more than %d kinds", maxKinds)
		}
		name, err := r.str(maxKindName)
		if err != nil {
			return Event{}, false, err
		}
		if len(name) == 0 {
			return Event{}, false, errors.New("trace: empty kind name")
		}
		for _, k := range r.kinds {
			if k == name {
				return Event{}, false, fmt.Errorf("trace: kind %q defined twice", name)
			}
		}
		r.pendingKind = len(r.kinds)
		r.kinds = append(r.kinds, name)
		r.kindHashes = append(r.kindHashes, metrics.HashKindName(name))
		return Event{}, false, nil
	case opRound:
		delta, err := r.scalar("round delta")
		if err != nil {
			return Event{}, false, err
		}
		if delta < 1 || r.round+delta > maxRounds {
			return Event{}, false, fmt.Errorf("trace: round delta %d from round %d", delta, r.round)
		}
		r.round += delta
		r.node = 0
		r.events++
		r.acc.Round(r.round)
		return Event{Op: OpRound, Round: r.round}, true, nil
	case opSend, opDrop:
		node, err := r.nodeDelta()
		if err != nil {
			return Event{}, false, err
		}
		port, err := r.scalar("port")
		if err != nil {
			return Event{}, false, err
		}
		kid, err := r.scalar("kind id")
		if err != nil {
			return Event{}, false, err
		}
		bits, err := r.scalar("bits")
		if err != nil {
			return Event{}, false, err
		}
		if port < 1 || port >= r.hdr.N {
			return Event{}, false, fmt.Errorf("trace: message port %d out of range for n=%d", port, r.hdr.N)
		}
		if kid >= len(r.kinds) {
			return Event{}, false, fmt.Errorf("trace: kind id %d, table has %d", kid, len(r.kinds))
		}
		if r.pendingKind >= 0 {
			if kid != r.pendingKind {
				return Event{}, false, errors.New("trace: kind definition not followed by its first use")
			}
			r.pendingKind = -1
		}
		r.events++
		r.msgs++
		r.bits += int64(bits)
		dropped := op == opDrop
		r.acc.Message(node, port, r.kindHashes[kid], bits, dropped)
		o := OpSend
		if dropped {
			o = OpDrop
		}
		return Event{Op: o, Round: r.round, Node: node, Port: port, Bits: bits, Kind: r.kinds[kid]}, true, nil
	case opCrash:
		node, err := r.nodeDelta()
		if err != nil {
			return Event{}, false, err
		}
		r.events++
		r.acc.Crash(node, r.round)
		return Event{Op: OpCrash, Round: r.round, Node: node}, true, nil
	case opViolation:
		node, err := r.nodeDelta()
		if err != nil {
			return Event{}, false, err
		}
		port, err := r.scalar("violation port")
		if err != nil {
			return Event{}, false, err
		}
		reason, err := r.str(maxText)
		if err != nil {
			return Event{}, false, err
		}
		r.events++
		return Event{Op: OpViolation, Round: r.round, Node: node, Port: port, Text: reason}, true, nil
	case opAnnotation:
		node, err := r.nodeDelta()
		if err != nil {
			return Event{}, false, err
		}
		text, err := r.str(maxText)
		if err != nil {
			return Event{}, false, err
		}
		r.events++
		return Event{Op: OpAnnotation, Round: r.round, Node: node, Text: text}, true, nil
	default:
		return Event{}, false, fmt.Errorf("trace: unknown record opcode %d", op)
	}
}

// nodeDelta decodes a node delta and applies the ordering rules: events
// only inside rounds, nodes non-decreasing within a round, below n.
func (r *Reader) nodeDelta() (int, error) {
	if r.round == 0 {
		return 0, errors.New("trace: event before first round")
	}
	delta, err := r.scalar("node delta")
	if err != nil {
		return 0, err
	}
	node := r.node + delta
	if node >= r.hdr.N {
		return 0, fmt.Errorf("trace: node %d out of range for n=%d", node, r.hdr.N)
	}
	r.node = node
	return node, nil
}

// scalar decodes one bounded non-negative varint.
func (r *Reader) scalar(what string) (int, error) {
	v, err := readUvarint(r.br)
	if err != nil {
		return 0, fmt.Errorf("trace: %s: %w", what, err)
	}
	if v > maxScalar {
		return 0, fmt.Errorf("trace: %s %d out of range", what, v)
	}
	return int(v), nil
}

// str decodes a length-prefixed string with a hard cap; the allocation
// is bounded by the bytes actually present, never the declared length.
func (r *Reader) str(cap int) (string, error) {
	n, err := readUvarint(r.br)
	if err != nil {
		return "", fmt.Errorf("trace: string length: %w", err)
	}
	if n > uint64(cap) {
		return "", fmt.Errorf("trace: string %d bytes, cap %d", n, cap)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return "", fmt.Errorf("trace: string body: %w", err)
	}
	return string(buf), nil
}

// readUvarint mirrors binary.ReadUvarint but normalizes io.EOF inside a
// record to io.ErrUnexpectedEOF: a chunk may only end at a record
// boundary.
func readUvarint(br *bufio.Reader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < 10; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, errors.New("varint overflows uint64")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, errors.New("varint overflows uint64")
}

// ReadAll decodes an entire trace into memory: header, events, footer.
// Intended for tests, diffing small traces, and tracectl export; large
// traces should stream through Next.
func ReadAll(src io.Reader) (Header, []Event, Footer, error) {
	r, err := NewReader(src)
	if err != nil {
		return Header{}, nil, Footer{}, err
	}
	var evs []Event
	for {
		ev, err := r.Next()
		if err == io.EOF {
			f, _ := r.Footer()
			return r.Header(), evs, f, nil
		}
		if err != nil {
			return r.Header(), evs, Footer{}, err
		}
		evs = append(evs, ev)
	}
}
