package metrics

import (
	"sync"
	"testing"
)

func TestInternKindStable(t *testing.T) {
	a := InternKind("kindtest-a")
	b := InternKind("kindtest-b")
	if a == b {
		t.Fatalf("distinct names share id %d", a)
	}
	if got := InternKind("kindtest-a"); got != a {
		t.Errorf("re-intern = %d, want %d", got, a)
	}
	if got := KindName(a); got != "kindtest-a" {
		t.Errorf("KindName = %q", got)
	}
	if a.String() != "kindtest-a" {
		t.Errorf("String = %q", a.String())
	}
}

func TestKindHashIsContentHash(t *testing.T) {
	k := InternKind("kindtest-hash")
	if got, want := KindHash(k), hashKindName("kindtest-hash"); got != want {
		t.Errorf("KindHash = %#x, want %#x", got, want)
	}
	// Out-of-range ids hash to zero rather than panicking.
	if got := KindHash(Kind(1 << 30)); got != 0 {
		t.Errorf("KindHash(out of range) = %#x", got)
	}
	if got := KindName(Kind(1 << 30)); got != "kind#1073741824" {
		t.Errorf("KindName(out of range) = %q", got)
	}
}

func TestKindNamesIndexedByKind(t *testing.T) {
	k := InternKind("kindtest-index")
	names := KindNames()
	if len(names) != KindCount() {
		t.Fatalf("len(KindNames) = %d, KindCount = %d", len(names), KindCount())
	}
	if names[k] != "kindtest-index" {
		t.Errorf("names[%d] = %q", k, names[k])
	}
}

func TestInternKindConcurrent(t *testing.T) {
	names := []string{"conc-a", "conc-b", "conc-c", "conc-d"}
	var wg sync.WaitGroup
	got := make([][]Kind, 8)
	for g := range got {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]Kind, len(names))
			for i, s := range names {
				ids[i] = InternKind(s)
			}
			got[g] = ids
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(got); g++ {
		for i := range names {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d interned %q as %d, goroutine 0 as %d",
					g, names[i], got[g][i], got[0][i])
			}
		}
	}
}

func TestAddKindAndBulkMatchAddMessage(t *testing.T) {
	kind := InternKind("bulk-kind")

	var byName Counters
	byName.BeginRound(1)
	byName.AddMessage("bulk-kind", 8)
	byName.AddMessage("bulk-kind", 8)

	var byID Counters
	byID.BeginRound(1)
	byID.AddKind(kind, 8)
	perKind := make([]int64, int(kind)+1)
	perKind[kind] = 1
	byID.AddBulk(1, 8, perKind)

	if byName.Messages() != byID.Messages() || byName.Bits() != byID.Bits() {
		t.Fatalf("totals differ: name=%d/%d id=%d/%d",
			byName.Messages(), byName.Bits(), byID.Messages(), byID.Bits())
	}
	if a, b := byName.PerKind()["bulk-kind"], byID.PerKind()["bulk-kind"]; a != b || a != 2 {
		t.Fatalf("per-kind differ: %d vs %d", a, b)
	}
	if a, b := byName.PerRound(), byID.PerRound(); len(a) != len(b) || a[0].Messages != b[0].Messages {
		t.Fatalf("per-round differ: %+v vs %+v", a, b)
	}
}

func TestCountersKindNames(t *testing.T) {
	var c Counters
	c.AddKind(InternKind("zz-last"), 1)
	c.AddKind(InternKind("aa-first"), 1)
	got := c.KindNames()
	if len(got) != 2 || got[0] != "aa-first" || got[1] != "zz-last" {
		t.Fatalf("KindNames = %v, want sorted [aa-first zz-last]", got)
	}
}

func TestReserveRoundsDoesNotChangeBehavior(t *testing.T) {
	var a, b Counters
	b.ReserveRounds(100)
	for r := 1; r <= 5; r++ {
		a.BeginRound(r)
		b.BeginRound(r)
		a.AddMessage("r", r)
		b.AddMessage("r", r)
	}
	ra, rb := a.PerRound(), b.PerRound()
	if len(ra) != len(rb) {
		t.Fatalf("round series lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("round %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	// A hostile maxRounds must not pre-allocate unboundedly.
	var c Counters
	c.ReserveRounds(1 << 40)
}
