// Package metrics accounts for the resources a protocol execution consumes:
// messages, payload bits, and rounds. The paper's central quantity is the
// message complexity (total messages sent by all nodes over the whole
// execution); Remark 1 additionally discusses bit complexity, so both are
// tracked, along with a per-round time series and a per-message-kind
// breakdown used by the experiment tables.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Counters accumulates resource usage for one execution. The zero value is
// ready to use. Counters is not safe for concurrent use; the concurrent
// engine aggregates per-round on the barrier, where it holds exclusive
// access.
type Counters struct {
	messages int64
	bits     int64
	rounds   int
	perRound []RoundUsage
	// perKind is indexed by Kind (see kind.go): a flat slice instead of a
	// string-keyed map, so the per-message path is a bounds check and an
	// increment.
	perKind []int64
}

// RoundUsage is the usage recorded for a single round.
type RoundUsage struct {
	Round    int
	Messages int64
	Bits     int64
}

// AddMessage records one sent message of the given kind and payload size.
// Hot paths that already hold an interned Kind should call AddKind
// instead and skip the registry lookup.
func (c *Counters) AddMessage(kind string, bits int) {
	c.AddKind(InternKind(kind), bits)
}

// AddKind records one sent message of the given interned kind and payload
// size.
func (c *Counters) AddKind(kind Kind, bits int) {
	c.messages++
	c.bits += int64(bits)
	c.bumpKind(kind, 1)
	if n := len(c.perRound); n > 0 {
		c.perRound[n-1].Messages++
		c.perRound[n-1].Bits += int64(bits)
	}
}

// AddBulk folds a worker's privately accumulated totals into c: messages
// and bits overall and into the current round, and perKind (indexed by
// Kind) into the per-kind tallies. It is the barrier-side half of the
// engine's sharded delivery pipeline, where each worker counts into flat
// locals and the coordination thread merges them in deterministic order.
func (c *Counters) AddBulk(messages, bits int64, perKind []int64) {
	if messages == 0 && bits == 0 {
		return
	}
	c.messages += messages
	c.bits += bits
	if n := len(c.perRound); n > 0 {
		c.perRound[n-1].Messages += messages
		c.perRound[n-1].Bits += bits
	}
	for k, v := range perKind {
		if v != 0 {
			c.bumpKind(Kind(k), v)
		}
	}
}

func (c *Counters) bumpKind(kind Kind, delta int64) {
	if int(kind) >= len(c.perKind) {
		grown := make([]int64, maxInt(int(kind)+1, KindCount()))
		copy(grown, c.perKind)
		c.perKind = grown
	}
	c.perKind[kind] += delta
}

// BeginRound marks the start of a round; subsequent AddMessage calls are
// attributed to it.
func (c *Counters) BeginRound(round int) {
	c.rounds = round
	c.perRound = append(c.perRound, RoundUsage{Round: round})
}

// ReserveRounds pre-sizes the per-round series for up to maxRounds
// BeginRound calls, so the steady-state round loop never grows it. The
// reservation is capped to keep a huge MaxRounds from pinning memory up
// front; beyond the cap the series grows by appending as before.
func (c *Counters) ReserveRounds(maxRounds int) {
	const reserveCap = 1 << 16
	if maxRounds > reserveCap {
		maxRounds = reserveCap
	}
	if maxRounds > cap(c.perRound) {
		grown := make([]RoundUsage, len(c.perRound), maxRounds)
		copy(grown, c.perRound)
		c.perRound = grown
	}
}

// ReserveKinds pre-sizes the per-kind tally slice for kinds [0, kinds),
// so the hot-path growth check in bumpKind never fires mid-round for any
// kind interned before the run started. Engines call it with
// KindCount() at construction; a kind interned lazily during the run
// still grows the slice, once.
func (c *Counters) ReserveKinds(kinds int) {
	if kinds > len(c.perKind) {
		grown := make([]int64, kinds)
		copy(grown, c.perKind)
		c.perKind = grown
	}
}

// Messages returns the total number of messages sent.
func (c *Counters) Messages() int64 { return c.messages }

// Bits returns the total number of payload bits sent.
func (c *Counters) Bits() int64 { return c.bits }

// Rounds returns the index of the last round that began.
func (c *Counters) Rounds() int { return c.rounds }

// PerRound returns a copy of the per-round usage series.
func (c *Counters) PerRound() []RoundUsage {
	out := make([]RoundUsage, len(c.perRound))
	copy(out, c.perRound)
	return out
}

// PerKind returns the per-kind message counts keyed by kind name. Kinds
// with zero recorded messages are omitted.
func (c *Counters) PerKind() map[string]int64 {
	out := make(map[string]int64, len(c.perKind))
	for k, v := range c.perKind {
		if v != 0 {
			out[KindName(Kind(k))] = v
		}
	}
	return out
}

// KindNames returns the human-readable names of the kinds this execution
// actually sent, in ascending-count-agnostic sorted order.
func (c *Counters) KindNames() []string {
	names := make([]string, 0, len(c.perKind))
	for k, v := range c.perKind {
		if v != 0 {
			names = append(names, KindName(Kind(k)))
		}
	}
	sort.Strings(names)
	return names
}

// Merge adds other's totals into c. Per-round series are merged by round
// index; the longer series wins on length.
func (c *Counters) Merge(other *Counters) {
	c.messages += other.messages
	c.bits += other.bits
	if other.rounds > c.rounds {
		c.rounds = other.rounds
	}
	for k, v := range other.perKind {
		if v != 0 {
			c.bumpKind(Kind(k), v)
		}
	}
	for i, ru := range other.perRound {
		if i < len(c.perRound) {
			c.perRound[i].Messages += ru.Messages
			c.perRound[i].Bits += ru.Bits
		} else {
			c.perRound = append(c.perRound, ru)
		}
	}
}

// Snapshot is an immutable, self-contained copy of a Counters' state.
// Unlike *Counters it shares no memory with its source, so a worker can
// take a Snapshot of counters it owns exclusively and hand it to an
// aggregator on another goroutine without a data race.
type Snapshot struct {
	Messages int64
	Bits     int64
	Rounds   int
	PerRound []RoundUsage
	PerKind  map[string]int64
}

// Snapshot returns a deep copy of the current state. The caller must hold
// exclusive access to c while the copy is taken; the returned Snapshot is
// then safe to share freely.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Messages: c.messages,
		Bits:     c.bits,
		Rounds:   c.rounds,
		PerRound: c.PerRound(),
		PerKind:  c.PerKind(),
	}
}

// MergeSnapshot adds a snapshot's totals into c, with the same semantics
// as Merge. It is the aggregation half of the worker-pool pattern: each
// worker snapshots counters it owns, and a single aggregator merges the
// snapshots.
func (c *Counters) MergeSnapshot(s Snapshot) {
	c.messages += s.Messages
	c.bits += s.Bits
	if s.Rounds > c.rounds {
		c.rounds = s.Rounds
	}
	for name, v := range s.PerKind {
		if v != 0 {
			c.bumpKind(InternKind(name), v)
		}
	}
	for i, ru := range s.PerRound {
		if i < len(c.perRound) {
			c.perRound[i].Messages += ru.Messages
			c.perRound[i].Bits += ru.Bits
		} else {
			c.perRound = append(c.perRound, ru)
		}
	}
}

// String summarises the counters on one line.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d messages=%d bits=%d", c.rounds, c.messages, c.bits)
	if kinds := c.KindNames(); len(kinds) > 0 {
		per := c.PerKind()
		b.WriteString(" [")
		for i, k := range kinds {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%d", k, per[k])
		}
		b.WriteString("]")
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
