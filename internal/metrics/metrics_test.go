package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var c Counters
	c.AddMessage("x", 10)
	if c.Messages() != 1 || c.Bits() != 10 {
		t.Fatalf("got messages=%d bits=%d", c.Messages(), c.Bits())
	}
}

func TestPerRoundAttribution(t *testing.T) {
	var c Counters
	c.BeginRound(1)
	c.AddMessage("a", 5)
	c.AddMessage("a", 5)
	c.BeginRound(2)
	c.AddMessage("b", 7)
	pr := c.PerRound()
	if len(pr) != 2 {
		t.Fatalf("got %d rounds", len(pr))
	}
	if pr[0].Messages != 2 || pr[0].Bits != 10 {
		t.Errorf("round 1: %+v", pr[0])
	}
	if pr[1].Messages != 1 || pr[1].Bits != 7 {
		t.Errorf("round 2: %+v", pr[1])
	}
	if c.Rounds() != 2 {
		t.Errorf("Rounds() = %d", c.Rounds())
	}
}

func TestMessageBeforeFirstRound(t *testing.T) {
	var c Counters
	c.AddMessage("a", 1) // no BeginRound yet: totals count, series empty
	if c.Messages() != 1 {
		t.Fatal("total lost")
	}
	if len(c.PerRound()) != 0 {
		t.Fatal("phantom round")
	}
}

func TestPerKind(t *testing.T) {
	var c Counters
	c.AddMessage("a", 1)
	c.AddMessage("b", 1)
	c.AddMessage("a", 1)
	pk := c.PerKind()
	if pk["a"] != 2 || pk["b"] != 1 {
		t.Fatalf("per-kind: %v", pk)
	}
	pk["a"] = 99 // must be a copy
	if c.PerKind()["a"] != 2 {
		t.Error("PerKind returned internal map")
	}
}

func TestPerRoundCopy(t *testing.T) {
	var c Counters
	c.BeginRound(1)
	c.AddMessage("a", 1)
	pr := c.PerRound()
	pr[0].Messages = 99
	if c.PerRound()[0].Messages != 1 {
		t.Error("PerRound returned internal slice")
	}
}

func TestMerge(t *testing.T) {
	var a, b Counters
	a.BeginRound(1)
	a.AddMessage("x", 2)
	b.BeginRound(1)
	b.AddMessage("x", 3)
	b.BeginRound(2)
	b.AddMessage("y", 4)
	a.Merge(&b)
	if a.Messages() != 3 || a.Bits() != 9 || a.Rounds() != 2 {
		t.Fatalf("merge totals: %s", a.String())
	}
	pr := a.PerRound()
	if len(pr) != 2 || pr[0].Messages != 2 || pr[1].Messages != 1 {
		t.Fatalf("merge series: %+v", pr)
	}
	if a.PerKind()["x"] != 2 || a.PerKind()["y"] != 1 {
		t.Fatalf("merge kinds: %v", a.PerKind())
	}
}

func TestMergeTotalsCommutative(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b, a2, b2 Counters
		for _, x := range xs {
			a.AddMessage("k", int(x))
			a2.AddMessage("k", int(x))
		}
		for _, y := range ys {
			b.AddMessage("k", int(y))
			b2.AddMessage("k", int(y))
		}
		a.Merge(&b)   // a+b
		b2.Merge(&a2) // b+a
		return a.Messages() == b2.Messages() && a.Bits() == b2.Bits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	var c Counters
	c.BeginRound(1)
	c.AddMessage("zz", 3)
	c.AddMessage("aa", 3)
	s := c.String()
	for _, want := range []string{"rounds=1", "messages=2", "bits=6", "aa=1", "zz=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	// Kinds render sorted.
	if strings.Index(s, "aa=") > strings.Index(s, "zz=") {
		t.Errorf("kinds not sorted: %q", s)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	var c Counters
	c.BeginRound(1)
	c.AddMessage("a", 8)
	s := c.Snapshot()
	c.AddMessage("a", 8)
	c.AddMessage("b", 4)
	if s.Messages != 1 || s.Bits != 8 || s.Rounds != 1 {
		t.Fatalf("snapshot totals: %+v", s)
	}
	if len(s.PerKind) != 1 || s.PerKind["a"] != 1 {
		t.Fatalf("snapshot perKind mutated: %v", s.PerKind)
	}
	if len(s.PerRound) != 1 || s.PerRound[0].Messages != 1 {
		t.Fatalf("snapshot perRound mutated: %v", s.PerRound)
	}
}

func TestMergeSnapshotMatchesMerge(t *testing.T) {
	build := func() *Counters {
		var c Counters
		c.BeginRound(1)
		c.AddMessage("x", 2)
		c.BeginRound(2)
		c.AddMessage("y", 3)
		return &c
	}
	var viaMerge, viaSnap Counters
	viaMerge.Merge(build())
	viaMerge.Merge(build())
	viaSnap.MergeSnapshot(build().Snapshot())
	viaSnap.MergeSnapshot(build().Snapshot())
	if viaMerge.String() != viaSnap.String() {
		t.Fatalf("MergeSnapshot diverges from Merge:\n %s\n %s", viaMerge.String(), viaSnap.String())
	}
}

func TestSnapshotConcurrentAggregation(t *testing.T) {
	// The worker-pool pattern simd uses: each goroutine owns its own
	// Counters, snapshots it, and a single aggregator merges. Run under
	// -race this is the regression test for the documented contract.
	const workers = 8
	snaps := make(chan Snapshot, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var c Counters
			c.BeginRound(1)
			for i := 0; i <= w; i++ {
				c.AddMessage("m", 1)
			}
			snaps <- c.Snapshot()
		}(w)
	}
	var agg Counters
	for w := 0; w < workers; w++ {
		agg.MergeSnapshot(<-snaps)
	}
	if agg.Messages() != workers*(workers+1)/2 {
		t.Fatalf("aggregated messages = %d", agg.Messages())
	}
}
