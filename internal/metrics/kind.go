package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind is a process-wide interned message-kind identifier. Kinds are
// dense small integers assigned in interning order, which lets Counters
// keep per-kind tallies in a flat []int64 instead of a string-keyed map
// and lets the simulator's per-message hot path avoid hashing the kind
// string entirely.
//
// The numeric value of a Kind is NOT stable across processes (it depends
// on interning order); anything that must be reproducible across runs —
// the execution digest in particular — uses KindHash, a content hash of
// the kind name precomputed once at interning time.
type Kind int32

// kindTable is an immutable snapshot of the registry. Readers load it
// atomically and index without locks; Intern builds a new snapshot under
// the mutex (copy-on-write), so the per-message fast paths never contend.
type kindTable struct {
	ids    map[string]Kind
	names  []string
	hashes []uint64
}

var (
	kindMu     sync.Mutex
	kindTable0 = &kindTable{ids: map[string]Kind{}}
	kinds      atomic.Pointer[kindTable]
)

func init() { kinds.Store(kindTable0) }

// InternKind returns the dense id for the given kind name, registering it
// on first use. Safe for concurrent use; lookups of already-interned
// names are lock-free.
func InternKind(name string) Kind {
	if k, ok := kinds.Load().ids[name]; ok {
		return k
	}
	kindMu.Lock()
	defer kindMu.Unlock()
	t := kinds.Load()
	if k, ok := t.ids[name]; ok {
		return k
	}
	k := Kind(len(t.names))
	nt := &kindTable{
		ids:    make(map[string]Kind, len(t.ids)+1),
		names:  append(append(make([]string, 0, len(t.names)+1), t.names...), name),
		hashes: append(append(make([]uint64, 0, len(t.hashes)+1), t.hashes...), hashKindName(name)),
	}
	for s, id := range t.ids {
		nt.ids[s] = id
	}
	nt.ids[name] = k
	kinds.Store(nt)
	return k
}

// KindName returns the name a Kind was interned under, or a placeholder
// for ids that were never interned.
func KindName(k Kind) string {
	t := kinds.Load()
	if k < 0 || int(k) >= len(t.names) {
		return fmt.Sprintf("kind#%d", int(k))
	}
	return t.names[k]
}

// String implements fmt.Stringer.
func (k Kind) String() string { return KindName(k) }

// KindHash returns the FNV-1a hash of the kind's name, precomputed at
// interning time. Unlike the raw Kind id it is independent of interning
// order, so it is safe to fold into cross-process-reproducible digests.
func KindHash(k Kind) uint64 {
	t := kinds.Load()
	if k < 0 || int(k) >= len(t.hashes) {
		return 0
	}
	return t.hashes[k]
}

// HashKindName returns the content hash a kind of the given name would
// carry (KindHash), without interning the name. Trace readers use it to
// recompute digests from decoded kind names: interning there would let
// arbitrary trace bytes grow the process-wide registry without bound.
func HashKindName(name string) uint64 { return hashKindName(name) }

// KindCount returns the number of kinds interned so far. Every valid Kind
// is in [0, KindCount()).
func KindCount() int { return len(kinds.Load().names) }

// KindNames returns the names of all interned kinds, indexed by Kind.
// Experiment tables use it to print human-readable per-kind breakdowns
// after interning.
func KindNames() []string {
	t := kinds.Load()
	return append([]string(nil), t.names...)
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// hashKindName is FNV-1a over the name bytes followed by the length, the
// same construction the netsim digest used per message before interning.
func hashKindName(name string) uint64 {
	h := fnvOffset
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime
	}
	h = (h ^ uint64(len(name))) * fnvPrime
	return h
}
