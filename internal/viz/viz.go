// Package viz renders small terminal figures for the experiment harness:
// log-scale bar charts for sweeps (messages vs n, success vs starvation)
// and sparklines for per-round message profiles. Pure text, no
// dependencies — the "figures" of this reproduction are rendered next to
// their tables by cmd/experiments -plot.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bars renders a horizontal bar chart. Values must be non-negative; when
// logScale is set, bar lengths are proportional to log10(1+value), which
// keeps power-law sweeps readable.
type Bars struct {
	Title    string
	Labels   []string
	Values   []float64
	Width    int // max bar width in cells; 0 = 48
	LogScale bool
}

// Render writes the chart.
func (b Bars) Render(w io.Writer) error {
	if len(b.Labels) != len(b.Values) {
		return fmt.Errorf("viz: %d labels for %d values", len(b.Labels), len(b.Values))
	}
	width := b.Width
	if width <= 0 {
		width = 48
	}
	if b.Title != "" {
		if _, err := fmt.Fprintln(w, b.Title); err != nil {
			return err
		}
	}
	labelW := 0
	for _, l := range b.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	maxV := 0.0
	for _, v := range b.Values {
		if v < 0 {
			return fmt.Errorf("viz: negative value %v", v)
		}
		if s := b.scale(v); s > maxV {
			maxV = s
		}
	}
	for i, l := range b.Labels {
		cells := 0
		if maxV > 0 {
			cells = int(math.Round(b.scale(b.Values[i]) / maxV * float64(width)))
		}
		if b.Values[i] > 0 && cells == 0 {
			cells = 1
		}
		bar := strings.Repeat("#", cells)
		if _, err := fmt.Fprintf(w, "  %-*s |%-*s %s\n", labelW, l, width, bar, formatValue(b.Values[i])); err != nil {
			return err
		}
	}
	return nil
}

func (b Bars) scale(v float64) float64 {
	if b.LogScale {
		return math.Log10(1 + v)
	}
	return v
}

// Sparkline renders a series as one line of eight-level block characters.
// It returns an empty string for an empty series.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	minV, maxV := values[0], values[0]
	for _, v := range values {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	var sb strings.Builder
	span := maxV - minV
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - minV) / span * float64(len(levels)-1))
		}
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}

// Downsample reduces a series to at most buckets points by averaging,
// for sparkline rendering of long per-round profiles.
func Downsample(values []float64, buckets int) []float64 {
	if buckets <= 0 || len(values) <= buckets {
		return append([]float64(nil), values...)
	}
	out := make([]float64, buckets)
	per := float64(len(values)) / float64(buckets)
	for i := 0; i < buckets; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(values) {
			hi = len(values)
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

func formatValue(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
