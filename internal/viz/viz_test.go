package viz

import (
	"strings"
	"testing"
)

func TestBarsRender(t *testing.T) {
	var sb strings.Builder
	b := Bars{
		Title:  "demo",
		Labels: []string{"a", "bbbb", "c"},
		Values: []float64{10, 100, 0},
		Width:  10,
	}
	if err := b.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Errorf("title line %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	// Largest value gets the full width; zero gets none.
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[2])
	}
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero value drew a bar: %q", lines[3])
	}
	// Non-zero small values draw at least one cell.
	if !strings.Contains(lines[1], "#") {
		t.Errorf("small value drew nothing: %q", lines[1])
	}
}

func TestBarsLogScaleCompresses(t *testing.T) {
	render := func(logScale bool) (shortBar int) {
		var sb strings.Builder
		b := Bars{Labels: []string{"s", "l"}, Values: []float64{100, 1e6}, Width: 40, LogScale: logScale}
		if err := b.Render(&sb); err != nil {
			t.Fatal(err)
		}
		line := strings.Split(sb.String(), "\n")[0]
		return strings.Count(line, "#")
	}
	if lin, log := render(false), render(true); log <= lin {
		t.Errorf("log scale did not lengthen the small bar: linear %d, log %d", lin, log)
	}
}

func TestBarsValidation(t *testing.T) {
	var sb strings.Builder
	if err := (Bars{Labels: []string{"a"}, Values: nil}).Render(&sb); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := (Bars{Labels: []string{"a"}, Values: []float64{-1}}).Render(&sb); err == nil {
		t.Error("negative value accepted")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty series should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("extremes wrong: %q", s)
	}
	// Constant series renders at the floor level.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series: %q", string(flat))
		}
	}
}

func TestDownsample(t *testing.T) {
	in := []float64{1, 1, 3, 3, 5, 5}
	out := Downsample(in, 3)
	if len(out) != 3 || out[0] != 1 || out[1] != 3 || out[2] != 5 {
		t.Fatalf("downsample: %v", out)
	}
	// No-op when already small enough; result is a copy.
	same := Downsample(in, 10)
	if len(same) != len(in) {
		t.Fatal("unexpected resize")
	}
	same[0] = 99
	if in[0] == 99 {
		t.Fatal("downsample returned the input slice")
	}
	if got := Downsample(in, 0); len(got) != len(in) {
		t.Fatal("buckets=0 should copy")
	}
}

func TestFormatValue(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {12, "12"}, {1500, "1.5k"}, {2.5e6, "2.50M"}, {0.25, "0.25"},
	}
	for _, tt := range tests {
		if got := formatValue(tt.in); got != tt.want {
			t.Errorf("formatValue(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
