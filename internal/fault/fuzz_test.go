package fault

import (
	"encoding/json"
	"reflect"
	"testing"

	"sublinear/internal/rng"
)

// FuzzScheduleRoundTrip hardens the schedule codec, the input surface of
// the DST repro workflow (`dstrun -repro file.json`): arbitrary bytes
// must never panic the decoder, anything that decodes and validates must
// re-encode canonically and round-trip to an equal schedule, and every
// valid schedule must build an adversary.
func FuzzScheduleRoundTrip(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		enc, err := json.Marshal(GenerateSchedule(16, 8, 6, rng.New(seed)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte(`{"n":2}`))
	f.Add([]byte(`{"n":8,"crashes":[{"node":1,"round":1,"policy":"bogus"}]}`))
	f.Add([]byte(`{"n":8,"crashes":[{"node":1,"round":1,"policy":3}]}`))
	f.Add([]byte(`{"n":-4,"crashes":[{"node":0,"round":0,"policy":"all"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Schedule
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			if _, advErr := s.Adversary(); advErr == nil {
				t.Fatalf("invalid schedule (%v) built an adversary", err)
			}
			return
		}
		if _, err := s.Adversary(); err != nil {
			t.Fatalf("valid schedule rejected by Adversary: %v", err)
		}
		enc, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("valid schedule cannot re-encode: %v", err)
		}
		var back Schedule
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		// An explicit empty crash list decodes as []Crash{} but re-encodes
		// as omitted (nil); the two are the same schedule.
		if len(s.Crashes) == 0 {
			s.Crashes = nil
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", s, back)
		}
		// Canonicalization algebra (the mc memo/journal keys): canonicalize
		// is idempotent, hashing is canonical-form invariant and stable,
		// and the rotation-canonical representative is an orbit invariant.
		c := s.Canonicalize()
		if !reflect.DeepEqual(c, c.Canonicalize()) {
			t.Fatalf("canonicalize not idempotent:\n%+v\n%+v", c, c.Canonicalize())
		}
		if !s.Equal(c) || s.Hash() != c.Hash() {
			t.Fatalf("canonical form not Equal/hash-stable: %+v vs %+v", s, c)
		}
		if h := s.Hash(); h != s.Hash() {
			t.Fatalf("hash not deterministic: %x vs %x", h, s.Hash())
		}
		rot := s.Rotate(1 + s.N/2)
		if rot.RotationCanonical().Hash() != s.RotationCanonical().Hash() {
			t.Fatalf("rotation canonical not orbit-invariant for %+v", s)
		}
	})
}
