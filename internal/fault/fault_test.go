package fault

import (
	"testing"

	"sublinear/internal/netsim"
	"sublinear/internal/rng"
)

func outbox(k int) []netsim.Send {
	out := make([]netsim.Send, k)
	for i := range out {
		out[i] = netsim.Send{Port: i + 1, Payload: probe{}}
	}
	return out
}

type probe struct{}

func (probe) Bits(int) int { return 1 }
func (probe) Kind() string { return "probe" }

func TestRandomPlanSelectsExactlyF(t *testing.T) {
	const n, f = 100, 37
	p := Must(NewRandomPlan(n, f, 10, DropAll, rng.New(1)))
	if got := p.FaultyCount(); got != f {
		t.Fatalf("FaultyCount = %d, want %d", got, f)
	}
	count := 0
	for u := 0; u < n; u++ {
		if p.Faulty(u) {
			count++
		}
	}
	if count != f {
		t.Fatalf("Faulty flags = %d, want %d", count, f)
	}
}

func TestRandomPlanCrashWindow(t *testing.T) {
	const n, f, horizon = 50, 20, 7
	p := Must(NewRandomPlan(n, f, horizon, DropAll, rng.New(2)))
	for u := 0; u < n; u++ {
		if !p.Faulty(u) {
			if p.CrashNow(u, 1, nil) || p.CrashNow(u, 1000, nil) {
				t.Fatalf("non-faulty node %d crashed", u)
			}
			continue
		}
		// The node must crash at some round within the window.
		crashed := 0
		for r := 1; r <= horizon; r++ {
			if p.CrashNow(u, r, nil) {
				crashed = r
				break
			}
		}
		if crashed == 0 {
			t.Fatalf("faulty node %d never crashes within the window", u)
		}
	}
}

func TestRandomPlanZeroFaults(t *testing.T) {
	p := Must(NewRandomPlan(10, 0, 5, DropAll, rng.New(3)))
	if p.FaultyCount() != 0 {
		t.Fatal("faults selected for f=0")
	}
}

// Regression: the constructors used to clamp f > n silently and panic on
// a non-positive horizon (rng.Intn(horizon)); now every impossible
// parameter is an error.
func TestPlanConstructorValidation(t *testing.T) {
	src := func() *rng.Source { return rng.New(4) }
	cases := []struct {
		name string
		err  func() error
	}{
		{"f > n", func() error { _, err := NewRandomPlan(10, 25, 5, DropAll, src()); return err }},
		{"f < 0", func() error { _, err := NewRandomPlan(10, -1, 5, DropAll, src()); return err }},
		{"zero horizon", func() error { _, err := NewRandomPlan(10, 3, 0, DropAll, src()); return err }},
		{"negative horizon", func() error { _, err := NewRandomPlan(10, 3, -7, DropAll, src()); return err }},
		{"n < 1", func() error { _, err := NewRandomPlan(0, 0, 5, DropAll, src()); return err }},
		{"invalid policy", func() error { _, err := NewRandomPlan(10, 3, 5, DropPolicy(99), src()); return err }},
		{"nil source", func() error { _, err := NewRandomPlan(10, 3, 5, DropAll, nil); return err }},
		{"late f > n", func() error { _, err := NewLateCrashPlan(10, 11, 5, src()); return err }},
		{"late zero round", func() error { _, err := NewLateCrashPlan(10, 3, 0, src()); return err }},
		{"targeted node range", func() error { _, err := NewTargetedPlan(10, map[int]int{10: 1}, DropAll, src()); return err }},
		{"targeted zero round", func() error { _, err := NewTargetedPlan(10, map[int]int{3: 0}, DropAll, src()); return err }},
	}
	for _, tc := range cases {
		if tc.err() == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The horizon is irrelevant when there are no faults to schedule.
	if _, err := NewRandomPlan(10, 0, 0, DropAll, src()); err != nil {
		t.Errorf("f=0 with zero horizon rejected: %v", err)
	}
}

func TestDropPolicies(t *testing.T) {
	src := rng.New(5)
	tests := []struct {
		policy DropPolicy
		check  func(t *testing.T, delivered []bool)
	}{
		{DropAll, func(t *testing.T, d []bool) {
			for i, ok := range d {
				if ok {
					t.Errorf("DropAll delivered index %d", i)
				}
			}
		}},
		{DropNone, func(t *testing.T, d []bool) {
			for i, ok := range d {
				if !ok {
					t.Errorf("DropNone dropped index %d", i)
				}
			}
		}},
		{DropHalf, func(t *testing.T, d []bool) {
			for i, ok := range d {
				if ok != (i%2 == 0) {
					t.Errorf("DropHalf index %d = %v", i, ok)
				}
			}
		}},
	}
	for _, tt := range tests {
		delivered := make([]bool, 10)
		for i := range delivered {
			delivered[i] = deliver(tt.policy, src, i)
		}
		tt.check(t, delivered)
	}
}

func TestDropRandomIsFair(t *testing.T) {
	src := rng.New(6)
	kept := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if deliver(DropRandom, src, i) {
			kept++
		}
	}
	if kept < trials*4/10 || kept > trials*6/10 {
		t.Fatalf("DropRandom kept %d/%d", kept, trials)
	}
}

func TestLateCrashPlan(t *testing.T) {
	const n, f, round = 40, 15, 99
	p := Must(NewLateCrashPlan(n, f, round, rng.New(7)))
	if p.FaultyCount() != f {
		t.Fatalf("FaultyCount = %d", p.FaultyCount())
	}
	for u := 0; u < n; u++ {
		if !p.Faulty(u) {
			continue
		}
		if p.CrashNow(u, round-1, nil) {
			t.Fatal("crashed before the scheduled round")
		}
		if !p.CrashNow(u, round, nil) {
			t.Fatal("did not crash at the scheduled round")
		}
		if !p.DeliverOnCrash(u, round, 3, netsim.Send{}) {
			t.Fatal("late-crash plan must deliver everything")
		}
	}
}

func TestTargetedPlan(t *testing.T) {
	p := Must(NewTargetedPlan(10, map[int]int{3: 2, 7: 5}, DropAll, rng.New(8)))
	if !p.Faulty(3) || !p.Faulty(7) || p.Faulty(0) {
		t.Fatal("faulty set wrong")
	}
	if p.CrashNow(3, 1, nil) || !p.CrashNow(3, 2, nil) {
		t.Fatal("node 3 crash timing wrong")
	}
	if !p.CrashNow(7, 6, nil) {
		t.Fatal("CrashNow must fire at or after the scheduled round")
	}
}

func TestPlanDeterminism(t *testing.T) {
	a := Must(NewRandomPlan(64, 20, 9, DropRandom, rng.New(42)))
	b := Must(NewRandomPlan(64, 20, 9, DropRandom, rng.New(42)))
	for u := 0; u < 64; u++ {
		if a.Faulty(u) != b.Faulty(u) {
			t.Fatal("faulty sets differ for identical seeds")
		}
		if a.crashRound[u] != b.crashRound[u] {
			t.Fatal("crash rounds differ for identical seeds")
		}
	}
	for i := 0; i < 100; i++ {
		if a.DeliverOnCrash(0, 1, i, netsim.Send{}) != b.DeliverOnCrash(0, 1, i, netsim.Send{}) {
			t.Fatal("drop coins differ for identical seeds")
		}
	}
}

func TestHunterCrashesOnBurst(t *testing.T) {
	h := NewHunter(20, 3, 5, DropHalf, rng.New(9))
	faulty := -1
	for u := 0; u < 20; u++ {
		if h.Faulty(u) {
			faulty = u
			break
		}
	}
	if faulty == -1 {
		t.Fatal("no faulty node")
	}
	if h.CrashNow(faulty, 1, outbox(4)) {
		t.Fatal("crashed below threshold")
	}
	if !h.CrashNow(faulty, 2, outbox(5)) {
		t.Fatal("did not crash on burst")
	}
}

func TestHunterBudget(t *testing.T) {
	h := NewHunter(20, 2, 1, DropAll, rng.New(10))
	crashes := 0
	for u := 0; u < 20; u++ {
		if h.CrashNow(u, 1, outbox(3)) {
			crashes++
		}
	}
	if crashes != 2 {
		t.Fatalf("hunter crashed %d nodes, budget 2", crashes)
	}
}

func TestHunterFaultyCount(t *testing.T) {
	h := NewHunter(50, 12, 4, DropHalf, rng.New(11))
	count := 0
	for u := 0; u < 50; u++ {
		if h.Faulty(u) {
			count++
		}
	}
	if count != 12 {
		t.Fatalf("faulty count = %d, want 12", count)
	}
}
