package fault

import (
	"encoding/json"
	"reflect"
	"testing"

	"sublinear/internal/netsim"
	"sublinear/internal/rng"
)

func TestScheduleValidate(t *testing.T) {
	good := Schedule{N: 8, Crashes: []Crash{{Node: 1, Round: 2, Policy: DropHalf}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{N: 1},
		{N: 8, Crashes: []Crash{{Node: 8, Round: 1, Policy: DropAll}}},
		{N: 8, Crashes: []Crash{{Node: -1, Round: 1, Policy: DropAll}}},
		{N: 8, Crashes: []Crash{{Node: 1, Round: 0, Policy: DropAll}}},
		{N: 8, Crashes: []Crash{{Node: 1, Round: 1, Policy: DropPolicy(7)}}},
		{N: 8, Crashes: []Crash{{Node: 1, Round: 1, Policy: DropAll}, {Node: 1, Round: 2, Policy: DropAll}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
		if _, err := s.Adversary(); err == nil {
			t.Errorf("bad schedule %d built an adversary", i)
		}
	}
}

func TestScheduleAdversaryExecutes(t *testing.T) {
	s := Schedule{N: 6, Crashes: []Crash{
		{Node: 2, Round: 3, Policy: DropAll},
		{Node: 4, Round: 1, Policy: DropNone},
	}}
	adv, err := s.Adversary()
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Faulty(2) || !adv.Faulty(4) || adv.Faulty(0) {
		t.Fatal("faulty set wrong")
	}
	if adv.CrashNow(2, 2, nil) || !adv.CrashNow(2, 3, nil) || !adv.CrashNow(2, 9, nil) {
		t.Fatal("node 2 crash timing wrong")
	}
	if adv.DeliverOnCrash(2, 3, 0, netsim.Send{}) {
		t.Fatal("DropAll delivered")
	}
	if !adv.DeliverOnCrash(4, 1, 1, netsim.Send{}) {
		t.Fatal("DropNone dropped")
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := GenerateSchedule(16, 8, 5, rng.New(11))
	enc, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, back)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("decoded schedule invalid: %v", err)
	}
}

func TestDropPolicyJSONRejectsUnknown(t *testing.T) {
	var p DropPolicy
	if err := json.Unmarshal([]byte(`"sideways"`), &p); err == nil {
		t.Fatal("unknown policy decoded")
	}
	if err := json.Unmarshal([]byte(`3`), &p); err == nil {
		t.Fatal("numeric policy decoded")
	}
	if _, err := json.Marshal(DropPolicy(42)); err == nil {
		t.Fatal("invalid policy encoded")
	}
}

func TestGenerateScheduleBounds(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		s := GenerateSchedule(12, 6, 4, rng.New(seed))
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid schedule: %v", seed, err)
		}
		if len(s.Crashes) > 6 {
			t.Fatalf("seed %d: %d crashes, maxF 6", seed, len(s.Crashes))
		}
		for _, c := range s.Crashes {
			if c.Round < 1 || c.Round > 4 {
				t.Fatalf("seed %d: crash round %d outside [1,4]", seed, c.Round)
			}
		}
	}
}

func TestShrinksAreSimpler(t *testing.T) {
	s := Schedule{N: 8, Crashes: []Crash{
		{Node: 1, Round: 2, Policy: DropHalf},
		{Node: 5, Round: 1, Policy: DropNone},
	}}
	shrinks := s.Shrinks(4)
	if len(shrinks) == 0 {
		t.Fatal("no shrink candidates")
	}
	for i, c := range shrinks {
		if err := c.Validate(); err != nil {
			t.Fatalf("shrink %d invalid: %v", i, err)
		}
		if reflect.DeepEqual(c, s) {
			t.Fatalf("shrink %d is not simpler: identical schedule", i)
		}
		if len(c.Crashes) > len(s.Crashes) {
			t.Fatalf("shrink %d grew the faulty set", i)
		}
	}
	// The first candidates remove whole crashes.
	if len(shrinks[0].Crashes) != 1 {
		t.Fatalf("first shrink kept %d crashes", len(shrinks[0].Crashes))
	}
	// An empty schedule has nothing simpler.
	if got := (Schedule{N: 8}).Shrinks(4); len(got) != 0 {
		t.Fatalf("empty schedule produced %d shrinks", len(got))
	}
}

func TestScheduleAdversaryReplaysIdentically(t *testing.T) {
	s := Schedule{N: 8, Seed: 77, Crashes: []Crash{{Node: 3, Round: 1, Policy: DropRandom}}}
	a := Must(s.Adversary())
	b := Must(s.Adversary())
	for i := 0; i < 64; i++ {
		if a.DeliverOnCrash(3, 1, i, netsim.Send{}) != b.DeliverOnCrash(3, 1, i, netsim.Send{}) {
			t.Fatal("DropRandom coins differ across fresh adversaries of one schedule")
		}
	}
}
