package fault

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"sublinear/internal/netsim"
	"sublinear/internal/rng"
)

func TestScheduleValidate(t *testing.T) {
	good := Schedule{N: 8, Crashes: []Crash{{Node: 1, Round: 2, Policy: DropHalf}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{N: 1},
		{N: 8, Crashes: []Crash{{Node: 8, Round: 1, Policy: DropAll}}},
		{N: 8, Crashes: []Crash{{Node: -1, Round: 1, Policy: DropAll}}},
		{N: 8, Crashes: []Crash{{Node: 1, Round: 0, Policy: DropAll}}},
		{N: 8, Crashes: []Crash{{Node: 1, Round: 1, Policy: DropPolicy(7)}}},
		{N: 8, Crashes: []Crash{{Node: 1, Round: 1, Policy: DropAll}, {Node: 1, Round: 2, Policy: DropAll}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
		if _, err := s.Adversary(); err == nil {
			t.Errorf("bad schedule %d built an adversary", i)
		}
	}
}

func TestScheduleAdversaryExecutes(t *testing.T) {
	s := Schedule{N: 6, Crashes: []Crash{
		{Node: 2, Round: 3, Policy: DropAll},
		{Node: 4, Round: 1, Policy: DropNone},
	}}
	adv, err := s.Adversary()
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Faulty(2) || !adv.Faulty(4) || adv.Faulty(0) {
		t.Fatal("faulty set wrong")
	}
	if adv.CrashNow(2, 2, nil) || !adv.CrashNow(2, 3, nil) || !adv.CrashNow(2, 9, nil) {
		t.Fatal("node 2 crash timing wrong")
	}
	if adv.DeliverOnCrash(2, 3, 0, netsim.Send{}) {
		t.Fatal("DropAll delivered")
	}
	if !adv.DeliverOnCrash(4, 1, 1, netsim.Send{}) {
		t.Fatal("DropNone dropped")
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := GenerateSchedule(16, 8, 5, rng.New(11))
	enc, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, back)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("decoded schedule invalid: %v", err)
	}
}

func TestDropPolicyJSONRejectsUnknown(t *testing.T) {
	var p DropPolicy
	if err := json.Unmarshal([]byte(`"sideways"`), &p); err == nil {
		t.Fatal("unknown policy decoded")
	}
	if err := json.Unmarshal([]byte(`3`), &p); err == nil {
		t.Fatal("numeric policy decoded")
	}
	if _, err := json.Marshal(DropPolicy(42)); err == nil {
		t.Fatal("invalid policy encoded")
	}
}

func TestGenerateScheduleBounds(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		s := GenerateSchedule(12, 6, 4, rng.New(seed))
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid schedule: %v", seed, err)
		}
		if len(s.Crashes) > 6 {
			t.Fatalf("seed %d: %d crashes, maxF 6", seed, len(s.Crashes))
		}
		for _, c := range s.Crashes {
			if c.Round < 1 || c.Round > 4 {
				t.Fatalf("seed %d: crash round %d outside [1,4]", seed, c.Round)
			}
		}
	}
}

func TestShrinksAreSimpler(t *testing.T) {
	s := Schedule{N: 8, Crashes: []Crash{
		{Node: 1, Round: 2, Policy: DropHalf},
		{Node: 5, Round: 1, Policy: DropNone},
	}}
	shrinks := s.Shrinks(4)
	if len(shrinks) == 0 {
		t.Fatal("no shrink candidates")
	}
	for i, c := range shrinks {
		if err := c.Validate(); err != nil {
			t.Fatalf("shrink %d invalid: %v", i, err)
		}
		if reflect.DeepEqual(c, s) {
			t.Fatalf("shrink %d is not simpler: identical schedule", i)
		}
		if len(c.Crashes) > len(s.Crashes) {
			t.Fatalf("shrink %d grew the faulty set", i)
		}
	}
	// The first candidates remove whole crashes.
	if len(shrinks[0].Crashes) != 1 {
		t.Fatalf("first shrink kept %d crashes", len(shrinks[0].Crashes))
	}
	// An empty schedule has nothing simpler.
	if got := (Schedule{N: 8}).Shrinks(4); len(got) != 0 {
		t.Fatalf("empty schedule produced %d shrinks", len(got))
	}
}

func TestScheduleAdversaryReplaysIdentically(t *testing.T) {
	s := Schedule{N: 8, Seed: 77, Crashes: []Crash{{Node: 3, Round: 1, Policy: DropRandom}}}
	a := Must(s.Adversary())
	b := Must(s.Adversary())
	for i := 0; i < 64; i++ {
		if a.DeliverOnCrash(3, 1, i, netsim.Send{}) != b.DeliverOnCrash(3, 1, i, netsim.Send{}) {
			t.Fatal("DropRandom coins differ across fresh adversaries of one schedule")
		}
	}
}

func TestScheduleNextCrashRound(t *testing.T) {
	s := Schedule{N: 8, Crashes: []Crash{
		{Node: 1, Round: 3, Policy: DropNone},
		{Node: 5, Round: 7, Policy: DropAll},
	}}
	adv := Must(s.Adversary())
	if got := adv.NextCrashRound(1); got != 3 {
		t.Fatalf("NextCrashRound(1) = %d, want 3", got)
	}
	// A scheduled round already in the past clamps to the current round:
	// CrashNow would fire immediately.
	if got := adv.NextCrashRound(4); got != 4 {
		t.Fatalf("NextCrashRound(4) = %d, want 4 (clamped past round for node 1)", got)
	}
	// Firing node 1's crash spends it; the next crash is node 5's.
	if !adv.CrashNow(1, 3, nil) {
		t.Fatal("node 1 did not crash at its scheduled round")
	}
	if got := adv.NextCrashRound(4); got != 7 {
		t.Fatalf("NextCrashRound(4) after node 1 fired = %d, want 7", got)
	}
	if !adv.CrashNow(5, 7, nil) {
		t.Fatal("node 5 did not crash at its scheduled round")
	}
	// All crashes spent: the rest of the run is promised crash-free.
	if got := adv.NextCrashRound(8); got != math.MaxInt {
		t.Fatalf("NextCrashRound(8) with all crashes spent = %d, want math.MaxInt", got)
	}
}

// chatter is a minimal machine that broadcasts every round, so crashes
// and drop policies are visible in the message counts and digest.
type chatter struct{ rounds int }

func (m *chatter) Step(env *netsim.Env, round int, _ []netsim.Delivery) []netsim.Send {
	m.rounds = round
	out := make([]netsim.Send, 0, env.Deg)
	for p := 1; p <= env.Deg; p++ {
		out = append(out, netsim.Send{Port: p, Payload: pingPayload{}})
	}
	return out
}
func (m *chatter) Done() bool  { return m.rounds >= 6 }
func (m *chatter) Output() any { return m.rounds }

type pingPayload struct{}

func (pingPayload) Bits(int) int { return 8 }
func (pingPayload) Kind() string { return "ping" }

// hidePlanner wraps a ScheduleAdversary so the engine sees only the base
// Adversary interface: the CrashPlanner fast path is disabled and every
// round takes the split crash-pass pipeline.
type hidePlanner struct{ *ScheduleAdversary }

func (h hidePlanner) Faulty(u int) bool { return h.ScheduleAdversary.Faulty(u) }

// TestSchedulePlannerDigestParity pins the engine's batched-barrier
// contract: publishing crash-free windows via NextCrashRound must not
// change the execution — digests, counters, and crash records stay
// byte-identical to the per-round CrashNow consultation, across engine
// modes and worker counts.
func TestSchedulePlannerDigestParity(t *testing.T) {
	s := Schedule{N: 24, Seed: 9, Crashes: []Crash{
		{Node: 2, Round: 2, Policy: DropHalf},
		{Node: 11, Round: 4, Policy: DropRandom},
		{Node: 17, Round: 4, Policy: DropAll},
	}}
	run := func(adv netsim.Adversary, mode netsim.RunMode, workers int) *netsim.Result {
		t.Helper()
		machines := make([]netsim.Machine, s.N)
		for u := range machines {
			machines[u] = &chatter{}
		}
		eng, err := netsim.NewEngine(netsim.Config{N: s.N, Alpha: 0.5, Seed: 33, MaxRounds: 8, Workers: workers}, machines, adv)
		if err != nil {
			t.Fatal(err)
		}
		eng.Mode = mode
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(hidePlanner{Must(s.Adversary())}, netsim.Sequential, 1)
	for _, tc := range []struct {
		name    string
		planner bool
		mode    netsim.RunMode
		workers int
	}{
		{"planner/sequential", true, netsim.Sequential, 1},
		{"planner/parallel-2", true, netsim.Parallel, 2},
		{"planner/parallel-5", true, netsim.Parallel, 5},
		{"hidden/parallel-3", false, netsim.Parallel, 3},
	} {
		var adv netsim.Adversary = Must(s.Adversary())
		if !tc.planner {
			adv = hidePlanner{Must(s.Adversary())}
		}
		got := run(adv, tc.mode, tc.workers)
		if got.Digest != ref.Digest {
			t.Errorf("%s: digest %#x, want %#x", tc.name, got.Digest, ref.Digest)
		}
		if got.Counters.Messages() != ref.Counters.Messages() {
			t.Errorf("%s: messages %d, want %d", tc.name, got.Counters.Messages(), ref.Counters.Messages())
		}
		if !reflect.DeepEqual(got.CrashedAt, ref.CrashedAt) {
			t.Errorf("%s: crash rounds %v, want %v", tc.name, got.CrashedAt, ref.CrashedAt)
		}
	}
}
