// Package fault implements crash-fault adversaries for the simulator.
//
// The paper's adversary (Section II) is static in its choice of the faulty
// set — it selects up to f = (1-alpha)n nodes before execution — but
// adaptive in timing: it chooses, during the run, when each faulty node
// crashes and which subset of the crash-round messages is lost. The
// adversaries here implement that power at several strengths, from benign
// (crash late, lose nothing) to the split-delivery behaviour the election
// algorithm's iteration logic exists to survive.
package fault

import (
	"fmt"

	"sublinear/internal/netsim"
	"sublinear/internal/rng"
)

// DropPolicy decides which of a crashing node's final-round messages are
// delivered.
type DropPolicy int

// Drop policies for the crash round.
const (
	// DropAll loses every message of the crash round.
	DropAll DropPolicy = iota + 1
	// DropNone delivers every message and crashes the node afterwards.
	DropNone
	// DropHalf delivers only the first half of the outbox — the
	// adversarial "split" that leaves two groups with different views.
	DropHalf
	// DropRandom loses each message independently with probability 1/2.
	DropRandom
)

// Plan is a precomputed static fault plan: which nodes are faulty, when
// each crashes, and how its crash round is filtered. It implements
// netsim.Adversary deterministically.
type Plan struct {
	faulty     []bool
	crashRound []int // 0 = never crashes
	policy     DropPolicy
	coin       *rng.Source
}

var _ netsim.Adversary = (*Plan)(nil)

// NewRandomPlan selects f faulty nodes uniformly at random, assigns each a
// uniform crash round in [1, horizon], and applies the given drop policy.
// It rejects impossible parameters — f outside [0, n], a non-positive
// horizon with f > 0, an invalid policy, or a nil source — instead of
// panicking mid-construction. Must unwraps the result where parameters
// are static and known-good.
func NewRandomPlan(n, f, horizon int, policy DropPolicy, src *rng.Source) (*Plan, error) {
	if err := validatePlanArgs(n, f, policy, src); err != nil {
		return nil, err
	}
	if f > 0 && horizon < 1 {
		return nil, fmt.Errorf("fault: horizon %d, need >= 1 when f > 0", horizon)
	}
	p := newPlan(n, policy, src)
	if f == 0 {
		return p, nil
	}
	for _, u := range src.SampleDistinct(f, n, nil) {
		p.faulty[u] = true
		p.crashRound[u] = 1 + src.Intn(horizon)
	}
	return p, nil
}

// validatePlanArgs holds the checks shared by the plan constructors.
func validatePlanArgs(n, f int, policy DropPolicy, src *rng.Source) error {
	if n < 1 {
		return fmt.Errorf("fault: n = %d, need >= 1", n)
	}
	if f < 0 || f > n {
		return fmt.Errorf("fault: f = %d out of range [0, %d]", f, n)
	}
	if !validPolicy(policy) {
		return fmt.Errorf("fault: invalid policy %d", int(policy))
	}
	if src == nil {
		return fmt.Errorf("fault: nil rng source")
	}
	return nil
}

// Must unwraps a plan constructor's result, panicking on error. For tests
// and benchmarks whose parameters are static and known-good.
func Must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// NewLateCrashPlan selects f faulty nodes uniformly at random and crashes
// all of them in the given round, delivering all of their messages
// (DropNone). With round beyond the protocol's horizon this models the
// paper's footnote-3 scenario: every faulty node executes correctly until
// the leader is elected, then crashes — so an elected leader is faulty
// with probability f/n.
func NewLateCrashPlan(n, f, round int, src *rng.Source) (*Plan, error) {
	if err := validatePlanArgs(n, f, DropNone, src); err != nil {
		return nil, err
	}
	if f > 0 && round < 1 {
		return nil, fmt.Errorf("fault: crash round %d, need >= 1", round)
	}
	p := newPlan(n, DropNone, src)
	for _, u := range src.SampleDistinct(f, n, nil) {
		p.faulty[u] = true
		p.crashRound[u] = round
	}
	return p, nil
}

// NewTargetedPlan crashes the given nodes at the given rounds with the
// given policy. Useful for deterministic scenario tests.
func NewTargetedPlan(n int, crashRound map[int]int, policy DropPolicy, src *rng.Source) (*Plan, error) {
	if err := validatePlanArgs(n, len(crashRound), policy, src); err != nil {
		return nil, err
	}
	p := newPlan(n, policy, src)
	for u, r := range crashRound {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("fault: node %d out of range [0, %d)", u, n)
		}
		if r < 1 {
			return nil, fmt.Errorf("fault: node %d crash round %d, need >= 1", u, r)
		}
		p.faulty[u] = true
		p.crashRound[u] = r
	}
	return p, nil
}

func newPlan(n int, policy DropPolicy, src *rng.Source) *Plan {
	return &Plan{
		faulty:     make([]bool, n),
		crashRound: make([]int, n),
		policy:     policy,
		coin:       src.Split(0x0fa17),
	}
}

// Faulty reports whether node is in the static faulty set.
func (p *Plan) Faulty(node int) bool { return p.faulty[node] }

// CrashNow reports whether node's scheduled crash round has arrived.
func (p *Plan) CrashNow(node, round int, _ []netsim.Send) bool {
	return p.crashRound[node] != 0 && round >= p.crashRound[node]
}

// DeliverOnCrash applies the plan's drop policy.
func (p *Plan) DeliverOnCrash(_, _, msgIndex int, _ netsim.Send) bool {
	return deliver(p.policy, p.coin, msgIndex)
}

// FaultyCount returns the size of the faulty set.
func (p *Plan) FaultyCount() int {
	count := 0
	for _, f := range p.faulty {
		if f {
			count++
		}
	}
	return count
}

func deliver(policy DropPolicy, coin *rng.Source, msgIndex int) bool {
	switch policy {
	case DropAll:
		return false
	case DropNone:
		return true
	case DropHalf:
		// Parity split: deliver even indices. Index order is the order
		// the machine emitted sends, so this cuts a broadcast in half.
		return msgIndex%2 == 0
	case DropRandom:
		return coin.Bool(0.5)
	default:
		return true
	}
}

// Hunter is an adaptive adversary that targets protocol committees: it
// watches outboxes and crashes a faulty node the first round that node
// sends a burst of at least Threshold messages (the signature of a
// candidate or referee broadcast), splitting the delivery. This is the
// worst case the election iteration is designed for: the minimum-rank
// candidate crashing mid-broadcast so only part of the committee learns
// its rank.
type Hunter struct {
	faulty    []bool
	threshold int
	policy    DropPolicy
	budget    int // remaining crashes; guards are per-run
	coin      *rng.Source
}

var _ netsim.Adversary = (*Hunter)(nil)

// NewHunter selects f faulty nodes uniformly at random and returns a
// Hunter with the given burst threshold. At most f nodes crash. Policy
// DropHalf is the canonical choice.
func NewHunter(n, f, threshold int, policy DropPolicy, src *rng.Source) *Hunter {
	h := &Hunter{
		faulty:    make([]bool, n),
		threshold: threshold,
		policy:    policy,
		budget:    f,
		coin:      src.Split(0x1fa17),
	}
	if f > n {
		f = n
	}
	if f > 0 {
		for _, u := range src.SampleDistinct(f, n, nil) {
			h.faulty[u] = true
		}
	}
	return h
}

// Faulty reports whether node is in the static faulty set.
func (h *Hunter) Faulty(node int) bool { return h.faulty[node] }

// CrashNow crashes a faulty node the first time it bursts.
func (h *Hunter) CrashNow(_, _ int, outbox []netsim.Send) bool {
	if h.budget <= 0 || len(outbox) < h.threshold {
		return false
	}
	h.budget--
	return true
}

// DeliverOnCrash applies the hunter's drop policy.
func (h *Hunter) DeliverOnCrash(_, _, msgIndex int, _ netsim.Send) bool {
	return deliver(h.policy, h.coin, msgIndex)
}
