package fault

import (
	"fmt"
	"math"
	"sort"
)

// This file gives Schedule the algebra the model checker (internal/mc)
// needs: a total canonical order, a stable content hash, the rotation
// group action used for symmetry reduction, and Universe — an explicit,
// indexable enumeration of every schedule in a bounded adversary space.
// Everything here is pure structure; nothing touches an rng stream, so
// two processes (or two shards of a fleet run) agree on index -> schedule
// without coordination.

// Canonicalize returns the schedule in canonical form: crashes sorted by
// (Node, Round, Policy) and exact duplicate entries removed. It is total
// (defined even for invalid schedules) and idempotent, and it preserves
// node identities — unlike RotationCanonical, which relabels. Repro files
// and minimized counterexamples use this form, so structurally equal
// schedules are byte-identical on disk.
func (s Schedule) Canonicalize() Schedule {
	out := s
	out.Crashes = append([]Crash(nil), s.Crashes...)
	sort.Slice(out.Crashes, func(i, j int) bool {
		return crashLess(out.Crashes[i], out.Crashes[j])
	})
	dedup := out.Crashes[:0]
	for _, c := range out.Crashes {
		if len(dedup) > 0 && dedup[len(dedup)-1] == c {
			continue
		}
		dedup = append(dedup, c)
	}
	out.Crashes = dedup
	if len(out.Crashes) == 0 {
		out.Crashes = nil
	}
	return out
}

func crashLess(a, b Crash) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Round != b.Round {
		return a.Round < b.Round
	}
	return a.Policy < b.Policy
}

// RandomSensitive reports whether the schedule's behaviour depends on its
// Seed — true exactly when some crash uses DropRandom. For every other
// policy the adversary is a pure function of the crash list, which is why
// Hash and Equal ignore the seed unless it can matter.
func (s Schedule) RandomSensitive() bool {
	for _, c := range s.Crashes {
		if c.Policy == DropRandom {
			return true
		}
	}
	return false
}

// Hash returns a stable 64-bit content hash of the schedule's canonical
// form. Schedules that execute identically hash identically: the fold
// covers N and the canonical crash list, and mixes in Seed only when the
// schedule is RandomSensitive (a DropRandom coin stream is the only place
// the seed can change behaviour). The hash is a pure function of the
// fields — stable across processes and runs — so it can key memo tables
// and content-addressed journals.
func (s Schedule) Hash() uint64 {
	c := s.Canonicalize()
	h := splitmix(0x5eed5eed ^ uint64(c.N))
	if c.RandomSensitive() {
		h = splitmix(h ^ c.Seed)
	}
	for _, cr := range c.Crashes {
		h = splitmix(h ^ uint64(cr.Node))
		h = splitmix(h ^ uint64(cr.Round))
		h = splitmix(h ^ uint64(cr.Policy))
	}
	return h
}

// splitmix is the splitmix64 finalizer: a cheap full-avalanche mix.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Equal reports whether two schedules describe the same adversary:
// identical N and canonical crash lists, and identical seeds when either
// is RandomSensitive. Equal schedules always Hash identically.
func (s Schedule) Equal(t Schedule) bool {
	a, b := s.Canonicalize(), t.Canonicalize()
	if a.N != b.N || len(a.Crashes) != len(b.Crashes) {
		return false
	}
	for i := range a.Crashes {
		if a.Crashes[i] != b.Crashes[i] {
			return false
		}
	}
	if (a.RandomSensitive() || b.RandomSensitive()) && a.Seed != b.Seed {
		return false
	}
	return true
}

// Rotate relabels every node u as (u+k) mod N and re-canonicalizes. The
// rotations are the symmetry group of netsim's port wiring
// (Peer(n,u,p) = (u+p) mod n): rotating the crash list and rotating the
// node array commute, which is the algebraic fact mc's symmetry pruning
// rests on.
func (s Schedule) Rotate(k int) Schedule {
	if s.N <= 0 {
		return s.Canonicalize()
	}
	k = ((k % s.N) + s.N) % s.N
	out := s
	out.Crashes = append([]Crash(nil), s.Crashes...)
	for i := range out.Crashes {
		out.Crashes[i].Node = (out.Crashes[i].Node + k) % s.N
	}
	return out.Canonicalize()
}

// RotationCanonical returns the lexicographically least schedule among
// the N rotations of s — a canonical representative of s's orbit under
// the rotation group. Two schedules are rotation-equivalent iff their
// RotationCanonical forms are Equal. Node identities are NOT preserved;
// use this only where the system under test is rotation-symmetric.
func (s Schedule) RotationCanonical() Schedule {
	best := s.Canonicalize()
	if s.N <= 1 || len(best.Crashes) == 0 {
		return best
	}
	for k := 1; k < s.N; k++ {
		if cand := s.Rotate(k); crashesLess(cand.Crashes, best.Crashes) {
			best = cand
		}
	}
	return best
}

func crashesLess(a, b []Crash) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return crashLess(a[i], b[i])
		}
	}
	return len(a) < len(b)
}

// DeterministicPolicies is the default mc enumeration palette: the three
// policies whose delivery decisions are pure functions of the message
// index. DropRandom is excluded — its coin stream makes the schedule
// seed-sensitive and consumes coins in node order, which breaks rotation
// symmetry — but callers who want it can list it explicitly.
var DeterministicPolicies = []DropPolicy{DropAll, DropHalf, DropNone}

// Universe is a bounded, fully enumerable adversary space: every
// schedule over n nodes with at most MaxF faulty nodes, each crashing in
// a round from [1, Horizon] under one of Policies. Its size is
//
//	sum over f in [0, MaxF] of C(n, f) * (Horizon*|Policies|)^f
//
// and At is a bijection from [0, Size()) onto the space, ordered by
// faulty count, then faulty set (combinadic order), then per-node
// (round, policy) digits. Because At is pure arithmetic, any index range
// [lo, hi) is a well-defined shard of the whole universe: fleet workers
// enumerate disjoint ranges and the union is exhaustive by construction.
type Universe struct {
	// N is the network size; schedules carry it verbatim.
	N int `json:"n"`
	// MaxF bounds the faulty count; clamped nowhere, validated in Validate.
	MaxF int `json:"max_f"`
	// Horizon bounds crash rounds to [1, Horizon].
	Horizon int `json:"horizon"`
	// Policies is the per-crash policy palette, in enumeration order.
	// Empty means DeterministicPolicies.
	Policies []DropPolicy `json:"policies,omitempty"`
	// Seed is stamped onto every schedule (only DropRandom reads it).
	Seed uint64 `json:"seed,omitempty"`
}

// maxUniverseSize caps Size so a typo'd bound fails fast instead of
// producing a "universe" no exhaustive run could ever finish.
const maxUniverseSize = int64(1) << 40

// Validate checks the bounds and that the total size is representable.
func (u Universe) Validate() error {
	if u.N < 2 {
		return fmt.Errorf("fault: universe n = %d, need >= 2", u.N)
	}
	if u.MaxF < 0 || u.MaxF > u.N {
		return fmt.Errorf("fault: universe maxF = %d out of range [0, %d]", u.MaxF, u.N)
	}
	if u.MaxF > 0 && u.Horizon < 1 {
		return fmt.Errorf("fault: universe horizon = %d, need >= 1 when maxF > 0", u.Horizon)
	}
	seen := map[DropPolicy]bool{}
	for _, p := range u.policies() {
		if !validPolicy(p) {
			return fmt.Errorf("fault: universe has invalid policy %d", p)
		}
		if seen[p] {
			return fmt.Errorf("fault: universe lists policy %s twice", p)
		}
		seen[p] = true
	}
	if _, err := u.size(); err != nil {
		return err
	}
	return nil
}

func (u Universe) policies() []DropPolicy {
	if len(u.Policies) == 0 {
		return DeterministicPolicies
	}
	return u.Policies
}

// Size returns the number of schedules in the universe. The universe
// must Validate; Size panics on overflow only if Validate was skipped.
func (u Universe) Size() int64 {
	n, err := u.size()
	if err != nil {
		panic(err)
	}
	return n
}

func (u Universe) size(layers ...*[]int64) (int64, error) {
	perCrash := int64(u.Horizon) * int64(len(u.policies()))
	total := int64(0)
	for f := 0; f <= u.MaxF; f++ {
		layer, err := mulChecked(binomial(u.N, f), powChecked(perCrash, f))
		if err != nil {
			return 0, fmt.Errorf("fault: universe layer f=%d: %w", f, err)
		}
		if len(layers) > 0 {
			*layers[0] = append(*layers[0], layer)
		}
		total += layer
		if total < 0 || total > maxUniverseSize {
			return 0, fmt.Errorf("fault: universe size exceeds %d at f=%d", maxUniverseSize, f)
		}
	}
	return total, nil
}

// LayerSizes returns the per-faulty-count layer sizes, summing to Size.
func (u Universe) LayerSizes() []int64 {
	var layers []int64
	if _, err := u.size(&layers); err != nil {
		panic(err)
	}
	return layers
}

// At unranks index i into its schedule: layer scan for the faulty count,
// combinadic unranking for the faulty set, then base-(Horizon*|Policies|)
// digits for each node's (round, policy). It panics when i is out of
// range — indices come from counted loops, never from input.
func (u Universe) At(i int64) Schedule {
	if i < 0 || i >= u.Size() {
		panic(fmt.Sprintf("fault: universe index %d out of range [0, %d)", i, u.Size()))
	}
	pols := u.policies()
	perCrash := int64(u.Horizon) * int64(len(pols))
	f := 0
	for {
		layer, _ := mulChecked(binomial(u.N, f), powChecked(perCrash, f))
		if i < layer {
			break
		}
		i -= layer
		f++
	}
	s := Schedule{N: u.N, Seed: u.Seed}
	if f == 0 {
		return s
	}
	detailSpace := powChecked(perCrash, f)
	if detailSpace < 0 {
		panic("fault: universe detail space overflow")
	}
	subset := unrankSubset(i/detailSpace, u.N, f)
	digits := i % detailSpace
	for _, node := range subset {
		d := digits % perCrash
		digits /= perCrash
		s.Crashes = append(s.Crashes, Crash{
			Node:   node,
			Round:  1 + int(d%int64(u.Horizon)),
			Policy: pols[int(d/int64(u.Horizon))],
		})
	}
	return s.Canonicalize()
}

// unrankSubset maps rank r in [0, C(n,f)) to the r-th f-subset of [0,n)
// in combinadic (lexicographic) order, returned ascending.
func unrankSubset(r int64, n, f int) []int {
	subset := make([]int, 0, f)
	next := 0
	for k := f; k > 0; k-- {
		for {
			// Subsets starting at `next` with k-1 more elements from the
			// remaining n-next-1 nodes.
			block := binomial(n-next-1, k-1)
			if r < block {
				break
			}
			r -= block
			next++
		}
		subset = append(subset, next)
		next++
	}
	return subset
}

// binomial computes C(n, k) exactly in int64, returning a negative
// sentinel on overflow (callers run it through mulChecked, which rejects
// negatives).
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := int64(1)
	for i := 0; i < k; i++ {
		hi := out * int64(n-i)
		if out != 0 && hi/out != int64(n-i) {
			return -1
		}
		out = hi / int64(i+1)
	}
	return out
}

func powChecked(base int64, exp int) int64 {
	out := int64(1)
	for i := 0; i < exp; i++ {
		v, err := mulChecked(out, base)
		if err != nil {
			return -1
		}
		out = v
	}
	return out
}

func mulChecked(a, b int64) (int64, error) {
	if a < 0 || b < 0 {
		return 0, fmt.Errorf("overflow")
	}
	if a == 0 || b == 0 {
		return 0, nil
	}
	if a > math.MaxInt64/b {
		return 0, fmt.Errorf("overflow: %d * %d", a, b)
	}
	return a * b, nil
}
