package fault

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"sublinear/internal/netsim"
	"sublinear/internal/rng"
)

// A Schedule is a fully explicit, serializable adversary: which nodes
// crash, in which round, and under which crash-round delivery policy. It
// is the unit of state the deterministic-simulation harness
// (internal/dst) fuzzes, replays, and shrinks — unlike Plan and Hunter,
// whose choices live inside an rng stream, every decision here is a
// plain field, so a failing schedule can be minimized structurally and
// committed as a JSON reproducer.
type Schedule struct {
	// N is the network size the schedule was generated for.
	N int `json:"n"`
	// Seed drives the DropRandom coin flips; irrelevant for the other
	// policies.
	Seed uint64 `json:"seed,omitempty"`
	// Crashes lists the faulty nodes; a node appears at most once.
	Crashes []Crash `json:"crashes,omitempty"`
}

// Crash is one faulty node's fate: crash in round Round, filtering the
// crash-round outbox with Policy.
type Crash struct {
	Node   int        `json:"node"`
	Round  int        `json:"round"`
	Policy DropPolicy `json:"policy"`
}

// Validate checks the schedule's internal consistency.
func (s Schedule) Validate() error {
	if s.N < 2 {
		return fmt.Errorf("fault: schedule n = %d, need >= 2", s.N)
	}
	seen := make(map[int]bool, len(s.Crashes))
	for i, c := range s.Crashes {
		if c.Node < 0 || c.Node >= s.N {
			return fmt.Errorf("fault: crash %d: node %d out of range [0,%d)", i, c.Node, s.N)
		}
		if seen[c.Node] {
			return fmt.Errorf("fault: node %d crashes twice", c.Node)
		}
		seen[c.Node] = true
		if c.Round < 1 {
			return fmt.Errorf("fault: crash %d: round %d, need >= 1", i, c.Round)
		}
		if !validPolicy(c.Policy) {
			return fmt.Errorf("fault: crash %d: invalid policy %d", i, c.Policy)
		}
	}
	return nil
}

// FaultyCount returns the number of faulty nodes in the schedule.
func (s Schedule) FaultyCount() int { return len(s.Crashes) }

// Canonical returns a copy with crashes sorted by node, so structurally
// equal schedules encode to identical JSON.
func (s Schedule) Canonical() Schedule {
	out := s
	out.Crashes = append([]Crash(nil), s.Crashes...)
	sort.Slice(out.Crashes, func(i, j int) bool { return out.Crashes[i].Node < out.Crashes[j].Node })
	return out
}

// Adversary validates the schedule and builds the netsim.Adversary that
// executes it. Each call returns a fresh adversary with a fresh coin
// stream, so the same schedule replays identically run after run.
func (s Schedule) Adversary() (*ScheduleAdversary, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	a := &ScheduleAdversary{
		faulty: make([]bool, s.N),
		round:  make([]int, s.N),
		policy: make([]DropPolicy, s.N),
		fired:  make([]bool, s.N),
		coin:   rng.New(s.Seed).Split(0x5ced),
	}
	for _, c := range s.Crashes {
		a.faulty[c.Node] = true
		a.round[c.Node] = c.Round
		a.policy[c.Node] = c.Policy
	}
	return a, nil
}

// ScheduleAdversary executes a Schedule. Construct with
// Schedule.Adversary.
type ScheduleAdversary struct {
	faulty []bool
	round  []int
	policy []DropPolicy
	// fired marks crashes whose CrashNow already returned true; the
	// engine never re-consults a crashed node, so NextCrashRound must
	// treat these as spent.
	fired []bool
	coin  *rng.Source
}

var (
	_ netsim.Adversary    = (*ScheduleAdversary)(nil)
	_ netsim.CrashPlanner = (*ScheduleAdversary)(nil)
)

// Faulty reports whether node is scheduled to crash.
func (a *ScheduleAdversary) Faulty(node int) bool { return a.faulty[node] }

// CrashNow reports whether node's scheduled crash round has arrived.
func (a *ScheduleAdversary) CrashNow(node, round int, _ []netsim.Send) bool {
	if a.round[node] != 0 && round >= a.round[node] {
		a.fired[node] = true
		return true
	}
	return false
}

// NextCrashRound implements netsim.CrashPlanner: a schedule's crash
// timings are fixed up front, so the earliest round at which CrashNow
// may fire is simply the minimum unfired scheduled round (clamped to
// the current round). With every scheduled crash spent it returns
// math.MaxInt, promising the rest of the run crash-free.
func (a *ScheduleAdversary) NextCrashRound(round int) int {
	next := math.MaxInt
	for u, r := range a.round {
		if r == 0 || a.fired[u] {
			continue
		}
		if r < round {
			r = round
		}
		if r < next {
			next = r
		}
	}
	return next
}

// DeliverOnCrash applies the crashing node's scheduled drop policy.
func (a *ScheduleAdversary) DeliverOnCrash(node, _, msgIndex int, _ netsim.Send) bool {
	return deliver(a.policy[node], a.coin, msgIndex)
}

// allPolicies is the generation palette, ordered from most to least
// destructive.
var allPolicies = []DropPolicy{DropAll, DropHalf, DropRandom, DropNone}

// GenerateSchedule draws a random schedule from src: a uniform faulty
// count in [0, maxF], distinct faulty nodes, per-node uniform crash
// rounds in [1, horizon], and a uniform policy per crash. maxF is
// clamped to n; horizon must be >= 1.
func GenerateSchedule(n, maxF, horizon int, src *rng.Source) Schedule {
	if maxF > n {
		maxF = n
	}
	s := Schedule{N: n, Seed: src.Uint64()}
	if maxF <= 0 || horizon < 1 {
		return s
	}
	f := src.Intn(maxF + 1)
	if f == 0 {
		return s
	}
	for _, u := range src.SampleDistinct(f, n, nil) {
		s.Crashes = append(s.Crashes, Crash{
			Node:   u,
			Round:  1 + src.Intn(horizon),
			Policy: allPolicies[src.Intn(len(allPolicies))],
		})
	}
	return s.Canonical()
}

// Shrinks proposes strictly simpler variants of the schedule, most
// aggressive first: drop a crash entirely (fewer faulty nodes), soften a
// crash's policy to DropNone (fewer lost messages), postpone a crash to
// horizon (later interference), then postpone by a single round. The
// harness greedily re-checks candidates and keeps any that still fail,
// converging on a minimal reproducer.
func (s Schedule) Shrinks(horizon int) []Schedule {
	var out []Schedule
	replace := func(i int, c Crash) Schedule {
		next := s
		next.Crashes = append([]Crash(nil), s.Crashes...)
		next.Crashes[i] = c
		return next
	}
	for i := range s.Crashes {
		next := s
		next.Crashes = append(append([]Crash(nil), s.Crashes[:i]...), s.Crashes[i+1:]...)
		out = append(out, next)
	}
	for i, c := range s.Crashes {
		if c.Policy != DropNone {
			c.Policy = DropNone
			out = append(out, replace(i, c))
		}
	}
	for i, c := range s.Crashes {
		if c.Round < horizon {
			late := c
			late.Round = horizon
			out = append(out, replace(i, late))
			if c.Round+1 < horizon {
				step := c
				step.Round = c.Round + 1
				out = append(out, replace(i, step))
			}
		}
	}
	return out
}

// String returns the policy's canonical spelling.
func (p DropPolicy) String() string {
	switch p {
	case DropAll:
		return "all"
	case DropNone:
		return "none"
	case DropHalf:
		return "half"
	case DropRandom:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps the canonical spelling back to a DropPolicy.
func ParsePolicy(s string) (DropPolicy, error) {
	switch s {
	case "all":
		return DropAll, nil
	case "none":
		return DropNone, nil
	case "half":
		return DropHalf, nil
	case "random":
		return DropRandom, nil
	default:
		return 0, fmt.Errorf("fault: unknown policy %q (want all|none|half|random)", s)
	}
}

func validPolicy(p DropPolicy) bool {
	switch p {
	case DropAll, DropNone, DropHalf, DropRandom:
		return true
	}
	return false
}

// MarshalJSON encodes the policy as its canonical spelling, rejecting
// values outside the defined set so a schedule never round-trips through
// JSON into an unchecked state.
func (p DropPolicy) MarshalJSON() ([]byte, error) {
	if !validPolicy(p) {
		return nil, fmt.Errorf("fault: cannot encode invalid policy %d", int(p))
	}
	return json.Marshal(p.String())
}

// UnmarshalJSON decodes the canonical spelling.
func (p *DropPolicy) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("fault: policy must be a string: %w", err)
	}
	parsed, err := ParsePolicy(s)
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}
