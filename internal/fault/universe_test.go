package fault

import (
	"fmt"
	"testing"

	"sublinear/internal/rng"
)

func scheduleKey(s Schedule) string {
	c := s.Canonicalize()
	return fmt.Sprintf("n=%d|%v", c.N, c.Crashes)
}

// bruteForce enumerates the universe by nested recursion, independent of
// the unranking arithmetic, as ground truth for At.
func bruteForce(u Universe) map[string]bool {
	out := map[string]bool{}
	pols := u.policies()
	var rec func(nextNode int, crashes []Crash)
	rec = func(nextNode int, crashes []Crash) {
		out[scheduleKey(Schedule{N: u.N, Crashes: append([]Crash(nil), crashes...)})] = true
		if len(crashes) == u.MaxF {
			return
		}
		for node := nextNode; node < u.N; node++ {
			for round := 1; round <= u.Horizon; round++ {
				for _, p := range pols {
					rec(node+1, append(crashes, Crash{Node: node, Round: round, Policy: p}))
				}
			}
		}
	}
	rec(0, nil)
	return out
}

func TestUniverseAtIsABijection(t *testing.T) {
	for _, u := range []Universe{
		{N: 4, MaxF: 2, Horizon: 3},
		{N: 5, MaxF: 3, Horizon: 2, Policies: []DropPolicy{DropAll, DropNone}},
		{N: 3, MaxF: 3, Horizon: 2},
		{N: 6, MaxF: 1, Horizon: 4},
		{N: 4, MaxF: 0, Horizon: 0},
	} {
		if err := u.Validate(); err != nil {
			t.Fatalf("universe %+v: %v", u, err)
		}
		want := bruteForce(u)
		if got := u.Size(); got != int64(len(want)) {
			t.Fatalf("universe %+v: Size() = %d, brute force = %d", u, got, len(want))
		}
		seen := map[string]bool{}
		for i := int64(0); i < u.Size(); i++ {
			s := u.At(i)
			if err := s.Validate(); err != nil {
				t.Fatalf("universe %+v: At(%d) invalid: %v", u, i, err)
			}
			k := scheduleKey(s)
			if seen[k] {
				t.Fatalf("universe %+v: At(%d) = %s repeats", u, i, k)
			}
			seen[k] = true
			if !want[k] {
				t.Fatalf("universe %+v: At(%d) = %s not in brute-force set", u, i, k)
			}
		}
	}
}

func TestUniverseLayerSizesSumToSize(t *testing.T) {
	u := Universe{N: 5, MaxF: 3, Horizon: 3}
	var sum int64
	layers := u.LayerSizes()
	if len(layers) != u.MaxF+1 {
		t.Fatalf("got %d layers, want %d", len(layers), u.MaxF+1)
	}
	for _, l := range layers {
		sum += l
	}
	if sum != u.Size() {
		t.Fatalf("layer sum %d != size %d", sum, u.Size())
	}
	// f=0 is always the single fault-free schedule.
	if layers[0] != 1 {
		t.Fatalf("layer 0 = %d, want 1", layers[0])
	}
}

func TestUniverseValidateRejects(t *testing.T) {
	for _, u := range []Universe{
		{N: 1, MaxF: 0, Horizon: 1},
		{N: 4, MaxF: 5, Horizon: 1},
		{N: 4, MaxF: -1, Horizon: 1},
		{N: 4, MaxF: 1, Horizon: 0},
		{N: 4, MaxF: 1, Horizon: 1, Policies: []DropPolicy{DropAll, DropAll}},
		{N: 4, MaxF: 1, Horizon: 1, Policies: []DropPolicy{DropPolicy(99)}},
		{N: 64, MaxF: 64, Horizon: 8},
	} {
		if err := u.Validate(); err == nil {
			t.Errorf("universe %+v: Validate accepted", u)
		}
	}
}

func TestCanonicalizeSortsAndDedupes(t *testing.T) {
	s := Schedule{N: 6, Crashes: []Crash{
		{Node: 4, Round: 2, Policy: DropAll},
		{Node: 1, Round: 3, Policy: DropHalf},
		{Node: 4, Round: 2, Policy: DropAll},
		{Node: 1, Round: 1, Policy: DropHalf},
	}}
	c := s.Canonicalize()
	want := []Crash{
		{Node: 1, Round: 1, Policy: DropHalf},
		{Node: 1, Round: 3, Policy: DropHalf},
		{Node: 4, Round: 2, Policy: DropAll},
	}
	if len(c.Crashes) != len(want) {
		t.Fatalf("got %v, want %v", c.Crashes, want)
	}
	for i := range want {
		if c.Crashes[i] != want[i] {
			t.Fatalf("got %v, want %v", c.Crashes, want)
		}
	}
	if !c.Equal(c.Canonicalize()) {
		t.Fatal("canonicalize not idempotent")
	}
}

func TestHashAndEqualSemantics(t *testing.T) {
	a := Schedule{N: 8, Seed: 1, Crashes: []Crash{
		{Node: 3, Round: 2, Policy: DropHalf}, {Node: 1, Round: 1, Policy: DropAll}}}
	b := Schedule{N: 8, Seed: 2, Crashes: []Crash{
		{Node: 1, Round: 1, Policy: DropAll}, {Node: 3, Round: 2, Policy: DropHalf}}}
	// Deterministic policies: seeds differ but behaviour cannot, so the
	// schedules are equal and hash identically.
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Fatalf("deterministic schedules with different seeds should be equal: %v vs %v", a, b)
	}
	// Make one crash random-sensitive: now the seed is load-bearing.
	a.Crashes[0].Policy = DropRandom
	b.Crashes[1].Policy = DropRandom
	if a.Equal(b) {
		t.Fatal("random-sensitive schedules with different seeds compared equal")
	}
	b.Seed = 1
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Fatal("identical random-sensitive schedules should be equal")
	}
	c := a.Canonicalize()
	if c.Hash() != a.Hash() {
		t.Fatal("hash not canonical-form invariant")
	}
	d := a
	d.Crashes = append([]Crash(nil), a.Crashes...)
	d.Crashes[0].Round++
	if d.Equal(a) || d.Hash() == a.Hash() {
		t.Fatal("distinct schedules compared equal or collided")
	}
}

func TestRotationCanonicalIsOrbitInvariant(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		n := 2 + src.Intn(7)
		s := GenerateSchedule(n, n, 4, src)
		want := s.RotationCanonical()
		for k := 0; k < n; k++ {
			if got := s.Rotate(k).RotationCanonical(); !got.Equal(want) {
				t.Fatalf("n=%d k=%d: rotation canonical differs:\n%v\n%v\nfrom %v",
					n, k, got, want, s)
			}
		}
		// The representative is in the orbit.
		inOrbit := false
		for k := 0; k < n; k++ {
			if s.Rotate(k).Equal(want) {
				inOrbit = true
				break
			}
		}
		// DropRandom schedules compare seed-sensitively; rotation keeps the
		// seed, so the representative is still reachable.
		if !inOrbit {
			t.Fatalf("n=%d: representative %v not in orbit of %v", n, want, s)
		}
	}
}

// TestOrbitSizesDivideGroupOrder checks the orbit-stabilizer bookkeeping
// mc's symmetry stats rely on: grouping a universe by rotation-canonical
// representative partitions it into orbits whose sizes divide n.
func TestOrbitSizesDivideGroupOrder(t *testing.T) {
	u := Universe{N: 4, MaxF: 2, Horizon: 2}
	orbits := map[string]int64{}
	for i := int64(0); i < u.Size(); i++ {
		orbits[scheduleKey(u.At(i).RotationCanonical())]++
	}
	var total int64
	for rep, size := range orbits {
		total += size
		if int64(u.N)%size != 0 {
			t.Fatalf("orbit %s has size %d, not a divisor of n=%d", rep, size, u.N)
		}
	}
	if total != u.Size() {
		t.Fatalf("orbits cover %d schedules, universe has %d", total, u.Size())
	}
	if int64(len(orbits)) >= u.Size() {
		t.Fatalf("symmetry reduction saved nothing: %d orbits for %d schedules", len(orbits), u.Size())
	}
}
