// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics, binomial confidence intervals for
// success rates, and log-log least squares for empirical scaling
// exponents (the paper's bounds are power laws in n and 1/alpha, so a
// log-log slope is the natural shape check).
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary holds the summary statistics of a sample. The JSON tags are
// the wire names the simsvc API serves.
type Summary struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
}

// Summarize computes summary statistics. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(varSum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of a sorted sample using
// linear interpolation. It returns NaN for an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WilsonInterval returns the 95% Wilson score confidence interval for a
// binomial proportion with k successes out of trials.
func WilsonInterval(k, trials int) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	const z = 1.96
	n := float64(trials)
	p := float64(k) / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Fit is an ordinary least squares line y = Slope*x + Intercept with the
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// ErrTooFewPoints is returned when a fit needs more data.
var ErrTooFewPoints = errors.New("stats: need at least two points")

// OLS fits y = a*x + b by least squares.
func OLS(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Fit{}, ErrTooFewPoints
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: zero variance in x")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// LogLogSlope fits log(y) = slope*log(x) + c and returns the fit; this is
// the empirical exponent of a power law y ~ x^slope. Points with
// non-positive coordinates are rejected.
func LogLogSlope(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, errors.New("stats: length mismatch")
	}
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return Fit{}, errors.New("stats: log-log fit needs positive data")
		}
		lx = append(lx, math.Log(xs[i]))
		ly = append(ly, math.Log(ys[i]))
	}
	return OLS(lx, ly)
}
