package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary: %+v", s)
	}
	if !almost(s.Mean, 2.5, 1e-12) {
		t.Errorf("mean = %v", s.Mean)
	}
	// Sample stddev of 1..4 is sqrt(5/3).
	if !almost(s.StdDev, math.Sqrt(5.0/3), 1e-12) {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if !almost(s.Median, 2.5, 1e-12) {
		t.Errorf("median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Fatal("empty sample")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.StdDev != 0 || s.Median != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single sample: %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	tests := []struct{ q, want float64 }{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.125, 15},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); !almost(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Errorf("no trials: (%v, %v)", lo, hi)
	}
	lo, hi = WilsonInterval(50, 100)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("50/100: (%v, %v) does not bracket 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("50/100 interval too wide: %v", hi-lo)
	}
	lo, hi = WilsonInterval(100, 100)
	if hi < 0.999 || lo < 0.9 {
		t.Errorf("100/100: (%v, %v)", lo, hi)
	}
	lo, hi = WilsonInterval(0, 100)
	if lo != 0 || hi > 0.1 {
		t.Errorf("0/100: (%v, %v)", lo, hi)
	}
	// More trials narrow the interval.
	lo1, hi1 := WilsonInterval(5, 10)
	lo2, hi2 := WilsonInterval(500, 1000)
	if hi2-lo2 >= hi1-lo1 {
		t.Error("interval did not narrow with more trials")
	}
}

func TestOLSExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 2
	}
	fit, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 3, 1e-9) || !almost(fit.Intercept, -2, 1e-9) || !almost(fit.R2, 1, 1e-9) {
		t.Fatalf("fit: %+v", fit)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := OLS([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x-variance accepted")
	}
	if _, err := OLS([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestLogLogSlopeRecoversExponent(t *testing.T) {
	xs := []float64{10, 100, 1000, 10000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Pow(x, 2.5)
	}
	fit, err := LogLogSlope(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 2.5, 1e-9) {
		t.Fatalf("slope = %v, want 2.5", fit.Slope)
	}
}

func TestLogLogSlopeRejectsNonPositive(t *testing.T) {
	if _, err := LogLogSlope([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Error("zero x accepted")
	}
	if _, err := LogLogSlope([]float64{1, 2}, []float64{1, -1}); err == nil {
		t.Error("negative y accepted")
	}
}

// Property: OLS recovers arbitrary lines exactly (up to float error).
func TestOLSProperty(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := float64(a8), float64(b8)
		xs := []float64{0, 1, 2, 3, 7, 11}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		fit, err := OLS(xs, ys)
		if err != nil {
			return false
		}
		return almost(fit.Slope, a, 1e-6) && almost(fit.Intercept, b, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the median lies within [min, max] and the mean too.
func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P90 && s.P90 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
