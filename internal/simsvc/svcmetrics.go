package simsvc

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sublinear/internal/quota"
)

// svcMetrics holds the daemon's own counters, exposed in Prometheus text
// format on /metrics. Everything is either atomic or behind the histogram
// mutex, so workers update without coordination.
type svcMetrics struct {
	submitted atomic.Int64 // accepted submissions (including cache hits)
	rejected  atomic.Int64 // 429 backpressure rejections
	invalid   atomic.Int64 // 400 validation rejections
	completed atomic.Int64 // jobs finished successfully
	failed    atomic.Int64 // jobs failed (error, panic, timeout)
	queued    atomic.Int64 // gauge: jobs waiting in the queue
	running   atomic.Int64 // gauge: jobs currently on a worker

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// Journal durability accounting: records restored at the last open.
	journalReplayedPending atomic.Int64
	journalReplayedDone    atomic.Int64

	// Model-checker progress, accumulated over finished "mc" jobs. The
	// counts sum across jobs (shards of one exhaustive run included);
	// frontier and rate are gauges of the deepest layer and the most
	// recent job's scan speed.
	mcScanned    atomic.Int64
	mcExplored   atomic.Int64
	mcSymSkipped atomic.Int64
	mcMemoHits   atomic.Int64
	mcViolations atomic.Int64
	mcFrontier   atomic.Int64 // gauge: deepest faulty-count layer scanned
	mcRate       atomic.Int64 // gauge: last job's states scanned per second

	mu      sync.Mutex
	msgs    map[string]*histogram // per-protocol mean messages per rep
	rounds  map[string]*histogram // per-protocol mean rounds per rep
	tenants map[string]*tenantCounters
}

// tenantCounters are one tenant's admission outcomes. Fields are
// atomic; the map itself is guarded by the metrics mutex.
type tenantCounters struct {
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
}

func newSvcMetrics() *svcMetrics {
	return &svcMetrics{
		msgs: map[string]*histogram{}, rounds: map[string]*histogram{},
		tenants: map[string]*tenantCounters{},
	}
}

// tenant returns the counters of one tenant, creating them on first
// sight.
func (m *svcMetrics) tenant(name string) *tenantCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[name]
	if !ok {
		t = &tenantCounters{}
		m.tenants[name] = t
	}
	return t
}

// observe records a finished job's per-repetition means into the
// per-protocol histograms, and a model-checking job's state-space
// accounting into the mc counters.
func (m *svcMetrics) observe(protocol string, res *JobResult) {
	if res == nil || res.Reps == 0 || protocol == ProtoExperiment {
		return
	}
	if protocol == ProtoMC {
		if res.MC == nil {
			return
		}
		s := res.MC.Stats
		m.mcScanned.Add(s.Scanned)
		m.mcExplored.Add(s.Explored)
		m.mcSymSkipped.Add(s.SymSkipped)
		m.mcMemoHits.Add(s.MemoHits)
		m.mcViolations.Add(s.Violations)
		if f := int64(s.Frontier); f > m.mcFrontier.Load() {
			m.mcFrontier.Store(f)
		}
		m.mcRate.Store(int64(s.Rate(time.Duration(res.MC.Elapsed * float64(time.Second)))))
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	hist(m.msgs, protocol, msgBuckets).observe(res.Messages.Mean)
	hist(m.rounds, protocol, roundBuckets).observe(res.Rounds.Mean)
}

func hist(set map[string]*histogram, key string, buckets []float64) *histogram {
	h, ok := set[key]
	if !ok {
		h = &histogram{upper: buckets, counts: make([]int64, len(buckets))}
		set[key] = h
	}
	return h
}

// histogram is a fixed-bucket cumulative histogram in the Prometheus
// sense: counts[i] counts observations <= upper[i], plus +Inf overflow.
type histogram struct {
	upper  []float64
	counts []int64
	inf    int64
	sum    float64
	n      int64
}

func (h *histogram) observe(v float64) {
	h.sum += v
	h.n++
	for i, up := range h.upper {
		if v <= up {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// Powers of 4 from 64 to ~16.7M cover everything from toy runs to n=65536
// quadratic baselines; rounds double from 8 to 4096.
var (
	msgBuckets   = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}
	roundBuckets = []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
)

// write renders the metrics in Prometheus text exposition format.
// depths is the live per-tenant queue state; events is the SSE spine.
func (m *svcMetrics) write(w io.Writer, cacheLen int, traces *traceStore, depths []quota.TenantDepth, events *eventHub) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("simd_jobs_submitted_total", "Accepted job submissions, including cache hits.", m.submitted.Load())
	counter("simd_jobs_rejected_total", "Submissions rejected with 429 because the queue was full.", m.rejected.Load())
	counter("simd_jobs_invalid_total", "Submissions rejected with 400 by spec validation.", m.invalid.Load())
	counter("simd_jobs_completed_total", "Jobs that finished with a result.", m.completed.Load())
	counter("simd_jobs_failed_total", "Jobs that failed: run error, panic, or timeout.", m.failed.Load())
	gauge("simd_jobs_queued", "Jobs waiting in the queue.", m.queued.Load())
	gauge("simd_jobs_running", "Jobs currently executing on a worker.", m.running.Load())
	counter("simd_journal_replayed_pending_total", "Journaled jobs re-enqueued at the last daemon start.", m.journalReplayedPending.Load())
	counter("simd_journal_replayed_done_total", "Journaled results re-warmed into the cache at the last daemon start.", m.journalReplayedDone.Load())
	if events != nil {
		counter("simd_events_published_total", "Job lifecycle and progress events published on the SSE spine.", events.published.Load())
		counter("simd_events_lag_dropped_total", "Events dropped or subscriptions cut because an SSE consumer lagged.", events.lagDrops.Load())
		gauge("simd_sse_subscribers", "Live SSE subscriptions.", events.subscribers.Load())
	}
	counter("simd_cache_hits_total", "Submissions served from the result cache.", m.cacheHits.Load())
	counter("simd_cache_misses_total", "Submissions that had to run.", m.cacheMisses.Load())
	gauge("simd_cache_entries", "Results currently cached.", int64(cacheLen))
	traceEntries, traceBytes, traceWritten := traces.stats()
	counter("simd_trace_bytes_written_total", "Trace bytes deposited into the store over the daemon's lifetime.", traceWritten)
	gauge("simd_trace_store_entries", "Execution traces currently resident in the store.", int64(traceEntries))
	gauge("simd_trace_store_bytes", "Bytes of trace data currently resident (LRU-capped).", traceBytes)
	counter("simd_mc_states_scanned_total", "Schedule indices scanned by finished model-checking jobs.", m.mcScanned.Load())
	counter("simd_mc_states_explored_total", "Schedules fully differentially checked (scanned minus symmetry prunes and memo hits).", m.mcExplored.Load())
	counter("simd_mc_sym_skipped_total", "Schedules pruned as non-canonical rotation representatives.", m.mcSymSkipped.Load())
	counter("simd_mc_memo_hits_total", "Schedules short-circuited by a repeated execution digest.", m.mcMemoHits.Load())
	counter("simd_mc_violations_total", "Schedules whose execution violated an oracle or diverged across engines.", m.mcViolations.Load())
	gauge("simd_mc_frontier", "Deepest faulty-count layer any model-checking job has scanned.", m.mcFrontier.Load())
	gauge("simd_mc_states_per_second", "Scan rate of the most recent model-checking job.", m.mcRate.Load())
	if scanned := m.mcScanned.Load(); scanned > 0 {
		dedup := float64(m.mcSymSkipped.Load()+m.mcMemoHits.Load()) / float64(scanned)
		fmt.Fprintf(w, "# HELP simd_mc_dedup_ratio Fraction of scanned states retired without a full differential check.\n# TYPE simd_mc_dedup_ratio gauge\nsimd_mc_dedup_ratio %g\n", dedup)
	}

	for _, d := range depths {
		fmt.Fprintf(w, "# HELP simd_tenant_queued Jobs a tenant has waiting in the fair queue.\n# TYPE simd_tenant_queued gauge\nsimd_tenant_queued{tenant=%q} %d\n", d.Tenant, d.Queued)
		fmt.Fprintf(w, "# HELP simd_tenant_running Jobs a tenant has on workers.\n# TYPE simd_tenant_running gauge\nsimd_tenant_running{tenant=%q} %d\n", d.Tenant, d.Running)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.tenants) > 0 {
		names := make([]string, 0, len(m.tenants))
		for name := range m.tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		tcounter := func(name, help string, load func(*tenantCounters) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, tn := range names {
				fmt.Fprintf(w, "%s{tenant=%q} %d\n", name, tn, load(m.tenants[tn]))
			}
		}
		tcounter("simd_tenant_jobs_submitted_total", "Accepted submissions per tenant, cache hits included.",
			func(t *tenantCounters) int64 { return t.submitted.Load() })
		tcounter("simd_tenant_jobs_completed_total", "Finished jobs per tenant.",
			func(t *tenantCounters) int64 { return t.completed.Load() })
		tcounter("simd_tenant_jobs_failed_total", "Failed jobs per tenant.",
			func(t *tenantCounters) int64 { return t.failed.Load() })
		tcounter("simd_tenant_jobs_rejected_total", "Admission rejections (429) per tenant.",
			func(t *tenantCounters) int64 { return t.rejected.Load() })
	}
	m.writeHists(w, "simd_job_messages", "Mean messages per repetition of finished jobs.", m.msgs)
	m.writeHists(w, "simd_job_rounds", "Mean rounds per repetition of finished jobs.", m.rounds)
}

func (m *svcMetrics) writeHists(w io.Writer, name, help string, set map[string]*histogram) {
	if len(set) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	protos := make([]string, 0, len(set))
	for p := range set {
		protos = append(protos, p)
	}
	sort.Strings(protos)
	for _, p := range protos {
		h := set[p]
		cum := int64(0)
		for i, up := range h.upper {
			cum += h.counts[i]
			fmt.Fprintf(w, "%s_bucket{protocol=%q,le=\"%g\"} %d\n", name, p, up, cum)
		}
		fmt.Fprintf(w, "%s_bucket{protocol=%q,le=\"+Inf\"} %d\n", name, p, cum+h.inf)
		fmt.Fprintf(w, "%s_sum{protocol=%q} %g\n", name, p, h.sum)
		fmt.Fprintf(w, "%s_count{protocol=%q} %d\n", name, p, h.n)
	}
}
