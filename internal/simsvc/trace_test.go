package simsvc

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sublinear/internal/trace"
)

// TestTraceSpecNormalization pins the trace flag's cache semantics: it
// splits the key (a traced job is not the same work as an untraced
// one), and the protocols that cannot trace have it zeroed so it cannot
// split their cache.
func TestTraceSpecNormalization(t *testing.T) {
	base := JobSpec{Protocol: "election", N: 64, Alpha: 0.75, Seed: 1}
	traced := base
	traced.Trace = true
	a, err := base.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	b, err := traced.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() == b.Key() {
		t.Error("trace flag does not split the cache key")
	}
	for _, proto := range []string{ProtoDST, ProtoExperiment} {
		spec := JobSpec{Protocol: proto, Seed: 1, Experiment: "E1", Trace: true}
		norm, err := spec.Normalize(DefaultLimits)
		if err != nil {
			t.Fatal(err)
		}
		if norm.Trace {
			t.Errorf("%s: trace flag survived normalization", proto)
		}
	}
}

// TestRecordTracePicksFailedRep checks the traced-rep policy directly:
// with a raw series marking rep 1 failed, the recorded trace is rep 1's
// run — its header carries rep 1's seed — and it reads back as a
// verified witness.
func TestRecordTracePicksFailedRep(t *testing.T) {
	spec, err := JobSpec{Protocol: "election", N: 48, Alpha: 0.75, Seed: 9, Reps: 3, Trace: true, Raw: true}.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	res := &JobResult{
		Reps: 3, Success: 2,
		Raw: &RawSeries{Success: []bool{true, false, true}},
	}
	if err := recordTrace(spec, res); err != nil {
		t.Fatal(err)
	}
	if res.TraceRep != 1 {
		t.Errorf("TraceRep = %d, want 1 (first failed rep)", res.TraceRep)
	}
	hdr, _, _, err := trace.ReadAll(bytes.NewReader(res.traceData))
	if err != nil {
		t.Fatalf("recorded trace does not read back: %v", err)
	}
	if hdr.Seed != repSeed(spec, 1) {
		t.Errorf("trace seed %d, want rep 1's seed %d", hdr.Seed, repSeed(spec, 1))
	}
	if hdr.Label != "election" || hdr.N != 48 {
		t.Errorf("trace header %+v", hdr)
	}
}

// TestRunSpecTracesEveryProtocol runs one traced repetition of each
// core protocol and each Table-I baseline through runSpec and requires
// a verified witness trace: the engines behind every protocol must all
// feed the recorder coherently.
func TestRunSpecTracesEveryProtocol(t *testing.T) {
	protos := []string{ProtoElection, ProtoAgreement, ProtoMinAgree}
	for p := range baselineProtocols {
		protos = append(protos, p)
	}
	for _, proto := range protos {
		t.Run(proto, func(t *testing.T) {
			spec, err := JobSpec{Protocol: proto, N: 64, Alpha: 0.75, Seed: 11, Trace: true}.Normalize(DefaultLimits)
			if err != nil {
				t.Fatal(err)
			}
			res, err := runSpec(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.traceData == nil {
				t.Fatal("no trace recorded")
			}
			if _, _, _, err := trace.ReadAll(bytes.NewReader(res.traceData)); err != nil {
				t.Fatalf("trace does not verify: %v", err)
			}
		})
	}
}

// TestTraceStoreEndToEnd drives the full loop over HTTP: submit a
// traced job, poll it, fetch the trace by the result's content address,
// check the address matches the bytes, and see the store surfaced in
// /metrics.
func TestTraceStoreEndToEnd(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	st, err := svc.Submit(JobSpec{Protocol: "agreement", N: 48, Alpha: 0.75, Seed: 3, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		got, ok := svc.Job(st.ID)
		return ok && (got.State == StateDone || got.State == StateFailed)
	})
	got, _ := svc.Job(st.ID)
	if got.State != StateDone {
		t.Fatalf("job %s: %s", got.State, got.Error)
	}
	if got.Result == nil || got.Result.TraceID == "" {
		t.Fatal("finished traced job has no TraceID")
	}

	resp, err := http.Get(srv.URL + "/v1/traces/" + got.Result.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d %s", resp.StatusCode, data)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != got.Result.TraceID {
		t.Error("fetched trace bytes do not hash to their content address")
	}
	if _, _, _, err := trace.ReadAll(bytes.NewReader(data)); err != nil {
		t.Fatalf("fetched trace does not verify: %v", err)
	}

	resp, err = http.Get(srv.URL + "/v1/traces/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"simd_trace_bytes_written_total",
		"simd_trace_store_entries 1",
		"simd_trace_store_bytes",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTraceStoreEviction pins the byte-cap contract: deposits are
// content-addressed and idempotent, the LRU evicts by bytes, and an
// entry larger than the whole store is never retained.
func TestTraceStoreEviction(t *testing.T) {
	ts := newTraceStore(100)
	blob := func(c byte, n int) []byte { return bytes.Repeat([]byte{c}, n) }

	idA := ts.put(blob('a', 40))
	idB := ts.put(blob('b', 40))
	if again := ts.put(blob('a', 40)); again != idA {
		t.Error("identical deposit changed its content address")
	}
	if entries, resident, _ := ts.stats(); entries != 2 || resident != 80 {
		t.Fatalf("stats = (%d, %d), want (2, 80)", entries, resident)
	}

	// Touch A so B is the LRU victim of the next deposit.
	if _, ok := ts.get(idA); !ok {
		t.Fatal("A missing before eviction")
	}
	ts.put(blob('c', 40))
	if _, ok := ts.get(idB); ok {
		t.Error("LRU victim B survived")
	}
	if _, ok := ts.get(idA); !ok {
		t.Error("recently used A evicted")
	}

	big := ts.put(blob('d', 200))
	if big == "" {
		t.Error("oversized deposit has no content address")
	}
	if _, ok := ts.get(big); ok {
		t.Error("oversized deposit was retained")
	}
	// written counts every deposited byte — duplicates and oversized
	// included — so it measures trace production, not retention:
	// a, b, a again, c, d.
	if _, resident, written := ts.stats(); resident > 100 {
		t.Errorf("resident %d exceeds the 100-byte cap", resident)
	} else if written != 40*4+200 {
		t.Errorf("written = %d, want %d", written, 40*4+200)
	}
}

// TestTraceStoreConcurrentEvictionAndFetch hammers one content address
// from three sides at once — re-deposits of the same bytes, fetches of
// its id, and churn deposits sized to force LRU evictions through it —
// and checks the store's invariants survive: every successful fetch
// returns bytes that rehash to the requested id, the resident total
// never exceeds the cap, and the final accounting is consistent. Run
// under -race this is the store's concurrency contract: eviction of an
// entry and a fetch of the same hash must serialize cleanly.
func TestTraceStoreConcurrentEvictionAndFetch(t *testing.T) {
	const cap = 1 << 10
	ts := newTraceStore(cap)
	hot := bytes.Repeat([]byte{'h'}, 300)
	hotID := ts.put(hot)

	var wg sync.WaitGroup
	start := make(chan struct{})
	var fetched, missed atomic.Int64
	// Re-depositors keep resurrecting the hot entry after evictions.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 500; j++ {
				if id := ts.put(hot); id != hotID {
					t.Errorf("re-deposit changed the content address: %s", id)
					return
				}
			}
		}()
	}
	// Churners force evictions: each deposit is distinct and ~cap/3, so
	// a handful of them push the hot entry off the tail.
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			blob := bytes.Repeat([]byte{byte(i)}, cap/3)
			for j := 0; j < 500; j++ {
				blob[0] = byte(j)
				ts.put(blob)
			}
		}()
	}
	// Fetchers race both: whatever they observe must be self-consistent.
	// They re-deposit the hot entry themselves every few iterations —
	// on a single-CPU box the scheduler can otherwise run the other
	// goroutines to completion first and leave nothing but misses.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 1000; j++ {
				if j%8 == 0 {
					ts.put(hot)
				}
				data, ok := ts.get(hotID)
				if !ok {
					missed.Add(1) // evicted at this instant: legal
					continue
				}
				sum := sha256.Sum256(data)
				if hex.EncodeToString(sum[:]) != hotID {
					t.Errorf("fetch returned bytes that do not hash to their id")
					return
				}
				fetched.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if fetched.Load() == 0 {
		t.Error("no fetch ever succeeded — the race never exercised the hit path")
	}
	t.Logf("fetches: %d hits, %d eviction misses", fetched.Load(), missed.Load())
	entries, resident, written := ts.stats()
	if resident > cap {
		t.Fatalf("resident %d exceeds the %d-byte cap", resident, cap)
	}
	if entries == 0 || written == 0 {
		t.Fatalf("final stats implausible: entries=%d written=%d", entries, written)
	}
}
