package simsvc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Config sizes the service. The zero value of any field selects its
// default.
type Config struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueSize bounds the job queue; submissions beyond it get explicit
	// backpressure (ErrQueueFull / HTTP 429). 0 means 256.
	QueueSize int
	// CacheSize bounds the result cache (entries); 0 means 4096.
	CacheSize int
	// TraceStoreBytes bounds the content-addressed trace store (bytes of
	// resident trace data, LRU-evicted); 0 means 64 MiB.
	TraceStoreBytes int64
	// JobTimeout bounds one job's execution; 0 means 2 minutes.
	JobTimeout time.Duration
	// Limits bound what a single job may request; zero means
	// DefaultLimits.
	Limits Limits
	// now is injectable for tests; nil means time.Now.
	now func() time.Time
	// exec is the job executor, injectable for tests to model slow,
	// panicking, or hung jobs; nil means runSpec.
	exec func(context.Context, JobSpec) (*JobResult, error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.TraceStoreBytes <= 0 {
		c.TraceStoreBytes = 64 << 20
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.Limits == (Limits{}) {
		c.Limits = DefaultLimits
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.exec == nil {
		c.exec = runSpec
	}
	return c
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one submission's record. Fields are guarded by the service
// mutex; Status returns a consistent copy.
type Job struct {
	ID        string
	Key       string
	Spec      JobSpec
	State     string
	Error     string
	CacheHit  bool
	Result    *JobResult
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID       string     `json:"id"`
	State    string     `json:"state"`
	Spec     JobSpec    `json:"spec"`
	CacheHit bool       `json:"cacheHit"`
	Error    string     `json:"error,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	// ElapsedMS is queue-to-finish wall time for finished jobs.
	ElapsedMS int64 `json:"elapsedMs,omitempty"`
}

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is the backpressure signal: the queue is at capacity
	// and the caller should retry later (HTTP 429).
	ErrQueueFull = errors.New("simsvc: job queue full")
	// ErrClosed means the service is draining and accepts no new work
	// (HTTP 503).
	ErrClosed = errors.New("simsvc: service is shutting down")
)

// Service owns the queue, the worker pool, the job store, and the result
// cache. Create with New, serve with Handler, stop with Close.
type Service struct {
	cfg     Config
	metrics *svcMetrics
	cache   *resultCache
	traces  *traceStore

	mu     sync.RWMutex
	closed bool
	jobs   map[string]*Job
	order  []string // submission order, for eviction and listing
	seq    int64

	queue chan *Job
	wg    sync.WaitGroup
}

// New starts a service with cfg.Workers workers.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		metrics: newSvcMetrics(),
		cache:   newResultCache(cfg.CacheSize),
		traces:  newTraceStore(cfg.TraceStoreBytes),
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueSize),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit validates and enqueues a job, serving it from the cache when an
// identical job (same normalized spec and seed) already ran. It never
// blocks: a full queue returns ErrQueueFull immediately.
func (s *Service) Submit(spec JobSpec) (JobStatus, error) {
	norm, err := spec.Normalize(s.cfg.Limits)
	if err != nil {
		s.metrics.invalid.Add(1)
		return JobStatus{}, err
	}
	key := norm.Key()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, ErrClosed
	}
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("j%08d", s.seq),
		Key:       key,
		Spec:      norm,
		Submitted: s.cfg.now(),
	}
	if res, ok := s.cache.get(key); ok {
		s.metrics.submitted.Add(1)
		s.metrics.cacheHits.Add(1)
		s.metrics.completed.Add(1)
		job.State = StateDone
		job.CacheHit = true
		job.Result = res
		job.Started, job.Finished = job.Submitted, job.Submitted
		s.store(job)
		return job.status(), nil
	}
	job.State = StateQueued
	select {
	case s.queue <- job:
	default:
		s.metrics.rejected.Add(1)
		return JobStatus{}, ErrQueueFull
	}
	s.metrics.submitted.Add(1)
	s.metrics.cacheMisses.Add(1)
	s.metrics.queued.Add(1)
	s.store(job)
	return job.status(), nil
}

// store indexes a job and evicts the oldest finished records beyond
// twice the cache size, so the store cannot grow without bound.
func (s *Service) store(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	limit := 2 * s.cfg.CacheSize
	for len(s.order) > limit {
		old, ok := s.jobs[s.order[0]]
		if ok && (old.State == StateQueued || old.State == StateRunning) {
			break // never evict live work
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
}

// Job returns the status of one job.
func (s *Service) Job(id string) (JobStatus, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return job.status(), true
}

// Jobs returns the status of every retained job, oldest first.
func (s *Service) Jobs() []JobStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		if job, ok := s.jobs[id]; ok {
			out = append(out, job.status())
		}
	}
	return out
}

// status must be called with the service mutex held.
func (j *Job) status() JobStatus {
	st := JobStatus{
		ID: j.ID, State: j.State, Spec: j.Spec,
		CacheHit: j.CacheHit, Error: j.Error, Result: j.Result,
	}
	if !j.Finished.IsZero() {
		st.ElapsedMS = j.Finished.Sub(j.Submitted).Milliseconds()
	}
	return st
}

// worker drains the queue until Close closes it, running one job at a
// time with panic isolation and the per-job timeout.
func (s *Service) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.metrics.queued.Add(-1)
		s.metrics.running.Add(1)
		s.transition(job, StateRunning)
		res, err := s.runIsolated(job.Spec)
		s.finish(job, res, err)
		s.metrics.running.Add(-1)
	}
}

// runIsolated executes the spec on a fresh goroutine so that a panic or a
// runaway repetition is confined to the job: the worker converts a panic
// into a job failure and a timeout abandons the run at its next
// repetition boundary.
func (s *Service) runIsolated(spec JobSpec) (*JobResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	defer cancel()
	type outcome struct {
		res *JobResult
		err error
	}
	// Buffered so an abandoned (timed-out) run's final send never blocks.
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("job panicked: %v", r)}
			}
		}()
		res, err := s.cfg.exec(ctx, spec)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		// The runner sees ctx.Done at its next rep boundary and exits;
		// the job is reported failed now.
		return nil, fmt.Errorf("job exceeded timeout %v", s.cfg.JobTimeout)
	}
}

func (s *Service) transition(job *Job, state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job.State = state
	if state == StateRunning {
		job.Started = s.cfg.now()
	}
}

func (s *Service) finish(job *Job, res *JobResult, err error) {
	if err == nil {
		// Move any recorded trace into the content-addressed store and
		// keep only its ID: the result (cached and shared by reference)
		// must not pin megabytes of trace bytes, and the store's byte cap
		// is the single bound on resident trace data.
		if res.traceData != nil {
			res.TraceID = s.traces.put(res.traceData)
			res.traceData = nil
		}
		s.cache.put(job.Key, res)
		s.metrics.completed.Add(1)
		s.metrics.observe(job.Spec.Protocol, res)
	} else {
		s.metrics.failed.Add(1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	job.Finished = s.cfg.now()
	if err != nil {
		job.State = StateFailed
		job.Error = err.Error()
		return
	}
	job.State = StateDone
	job.Result = res
}

// Draining reports whether Close has been called.
func (s *Service) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// QueueDepth returns the number of queued jobs.
func (s *Service) QueueDepth() int { return int(s.metrics.queued.Load()) }

// Close drains the service: new submissions are rejected with ErrClosed,
// queued and in-flight jobs run to completion, and workers exit. It
// returns ctx.Err if the drain outlives ctx (workers are then abandoned;
// the process is expected to exit).
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain interrupted: %w", ctx.Err())
	}
}
