package simsvc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sublinear/internal/mesh"
	"sublinear/internal/quota"
)

// Config sizes the service. The zero value of any field selects its
// default.
type Config struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueSize bounds the job queue; submissions beyond it get explicit
	// backpressure (ErrQueueFull / HTTP 429). 0 means 256.
	QueueSize int
	// CacheSize bounds the result cache (entries); 0 means 4096.
	CacheSize int
	// TraceStoreBytes bounds the content-addressed trace store (bytes of
	// resident trace data, LRU-evicted); 0 means 64 MiB.
	TraceStoreBytes int64
	// JobTimeout bounds one job's execution; 0 means 2 minutes.
	JobTimeout time.Duration
	// Limits bound what a single job may request; zero means
	// DefaultLimits.
	Limits Limits
	// Quota configures per-tenant admission budgets and fair-share
	// weights. Its TotalQueued defaults to QueueSize, so a quota-less
	// configuration behaves like the old single queue.
	Quota quota.Config
	// JournalPath, when non-empty, makes admissions durable: every
	// accepted job is fsync'd to an append-only JSONL journal before it
	// is acknowledged, and Open replays the journal so a killed daemon
	// restarts with its queue (original job IDs preserved, in-flight
	// jobs re-enqueued) and its result cache. Requires Open, not New.
	JournalPath string
	// Mesh, when set, is the daemon's gossip membership node: its
	// endpoints are mounted on the service handler and /healthz reports
	// its view of the fleet.
	Mesh *mesh.Node
	// now is injectable for tests; nil means time.Now.
	now func() time.Time
	// exec is the job executor, injectable for tests to model slow,
	// panicking, or hung jobs; nil means runSpec. Executors that want to
	// report per-repetition progress call the callback installed by
	// progressFn(ctx).
	exec func(context.Context, JobSpec) (*JobResult, error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.TraceStoreBytes <= 0 {
		c.TraceStoreBytes = 64 << 20
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.Limits == (Limits{}) {
		c.Limits = DefaultLimits
	}
	if c.Quota.TotalQueued <= 0 {
		c.Quota.TotalQueued = c.QueueSize
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.exec == nil {
		c.exec = runSpec
	}
	return c
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one submission's record. Fields are guarded by the service
// mutex; Status returns a consistent copy.
type Job struct {
	ID        string
	Key       string
	Spec      JobSpec
	State     string
	Error     string
	CacheHit  bool
	Result    *JobResult
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID       string     `json:"id"`
	State    string     `json:"state"`
	Spec     JobSpec    `json:"spec"`
	CacheHit bool       `json:"cacheHit"`
	Error    string     `json:"error,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	// ElapsedMS is queue-to-finish wall time for finished jobs.
	ElapsedMS int64 `json:"elapsedMs,omitempty"`
}

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is the backpressure signal: the queue — global or the
	// submitting tenant's budget — is at capacity and the caller should
	// retry later (HTTP 429). The wrapped quota error says which budget
	// it was.
	ErrQueueFull = errors.New("simsvc: job queue full")
	// ErrClosed means the service is draining and accepts no new work
	// (HTTP 503).
	ErrClosed = errors.New("simsvc: service is shutting down")
)

// progressKey carries the per-repetition progress callback through the
// executor's context, so injectable test executors keep the plain
// (ctx, spec) signature and real runs can still stream progress.
type progressKey struct{}

func withProgress(ctx context.Context, fn func(rep, reps int)) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// progressFn returns the progress callback installed on ctx, or a no-op.
func progressFn(ctx context.Context) func(rep, reps int) {
	if fn, ok := ctx.Value(progressKey{}).(func(rep, reps int)); ok {
		return fn
	}
	return func(int, int) {}
}

// Service owns the queue, the worker pool, the job store, and the result
// cache. Create with New (or Open when configured with a journal), serve
// with Handler, stop with Close.
type Service struct {
	cfg     Config
	metrics *svcMetrics
	cache   *resultCache
	traces  *traceStore
	events  *eventHub
	journal *jobJournal

	mu     sync.RWMutex
	closed bool
	jobs   map[string]*Job
	order  []string // submission order, for eviction and listing
	seq    int64

	queue *quota.Queue[*Job]
	wg    sync.WaitGroup
}

// New starts a service with cfg.Workers workers. It is Open for
// configurations that cannot fail; it panics when cfg asks for a
// journal, whose replay has real error paths — use Open for those.
func New(cfg Config) *Service {
	if cfg.JournalPath != "" {
		panic("simsvc: journaled services must be created with Open")
	}
	s, err := Open(cfg)
	if err != nil {
		panic(err) // unreachable: only the journal path can fail
	}
	return s
}

// Open starts a service, replaying the job journal first when cfg
// names one: journaled pending jobs re-enter the queue under their
// original IDs and journaled results re-warm the cache, so a kill -9
// mid-backlog costs at most the re-execution of jobs whose completion
// records had not yet flushed — and determinism makes those re-runs
// byte-identical.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		metrics: newSvcMetrics(),
		cache:   newResultCache(cfg.CacheSize),
		traces:  newTraceStore(cfg.TraceStoreBytes),
		events:  newEventHub(),
		jobs:    make(map[string]*Job),
		queue:   quota.NewQueue[*Job](cfg.Quota),
	}
	if cfg.JournalPath != "" {
		journal, replay, err := openJobJournal(cfg.JournalPath, cfg.CacheSize)
		if err != nil {
			return nil, err
		}
		s.journal = journal
		s.replay(replay)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// replay restores the journaled state before the workers start: done
// records first — each re-warms the result cache *and* resurrects its
// finished job under the original ID, so a client that submitted to the
// previous incarnation can still poll the ID it was given — then the
// pending queue in submission order with budgets bypassed: these jobs
// were admitted by a previous incarnation and a tightened quota must
// not strand them.
func (s *Service) replay(rep *journalReplay) {
	now := s.cfg.now()
	for i := range rep.Done {
		rec := &rep.Done[i]
		s.cache.put(rec.Key, rec.Result)
		if rec.Spec != nil { // records from older journals carry no spec
			s.store(&Job{
				ID: rec.ID, Key: rec.Key, Spec: *rec.Spec,
				State: StateDone, Error: rec.Error, Result: rec.Result,
				Submitted: now, Started: now, Finished: now,
			})
		}
		s.metrics.journalReplayedDone.Add(1)
	}
	s.seq = rep.MaxSeq
	for i := range rep.Pending {
		rec := &rep.Pending[i]
		job := &Job{
			ID: rec.ID, Key: rec.Spec.Key(), Spec: *rec.Spec,
			Submitted: now,
		}
		if res, ok := s.cache.get(job.Key); ok {
			job.State = StateDone
			job.CacheHit = true
			job.Result = res
			job.Started, job.Finished = now, now
			s.store(job)
			s.journal.recordDone(jobRecord{Op: "done", ID: job.ID, Spec: &job.Spec, Key: job.Key, State: StateDone, Result: res})
			continue
		}
		job.State = StateQueued
		if err := s.queue.Push(rec.Tenant, job, true); err != nil {
			continue // closed cannot happen here; defensive
		}
		s.metrics.queued.Add(1)
		s.metrics.journalReplayedPending.Add(1)
		s.store(job)
		s.events.publish(JobEvent{Type: "queued", Job: job.ID, Tenant: job.Spec.Tenant})
	}
}

// Submit validates and enqueues a job, serving it from the cache when an
// identical job (same normalized spec and seed) already ran. It never
// blocks: a full queue — global or the job's tenant budget — returns an
// error wrapping ErrQueueFull immediately.
func (s *Service) Submit(spec JobSpec) (JobStatus, error) {
	out := s.SubmitAll([]JobSpec{spec})
	return out[0].Status, out[0].Err
}

// Submission is one outcome of SubmitAll, parallel to the input specs.
type Submission struct {
	Status JobStatus
	Err    error
}

// SubmitAll submits a batch under one admission pass and, when the
// service is journaled, one fsync — the whole point of batched shard
// submission: a 256-spec batch costs the same disk latency as a single
// job. Outcomes are per-spec; an admission rejection of one spec does
// not disturb its neighbours.
func (s *Service) SubmitAll(specs []JobSpec) []Submission {
	out := make([]Submission, len(specs))
	var recs []jobRecord
	var acked []int // indices acknowledged pending journal durability

	s.mu.Lock()
	for i, spec := range specs {
		if s.closed {
			out[i].Err = ErrClosed
			continue
		}
		norm, err := spec.Normalize(s.cfg.Limits)
		if err != nil {
			s.metrics.invalid.Add(1)
			out[i].Err = err
			continue
		}
		key := norm.Key()
		s.seq++
		job := &Job{
			ID:        fmt.Sprintf("j%08d", s.seq),
			Key:       key,
			Spec:      norm,
			Submitted: s.cfg.now(),
		}
		if res, ok := s.cache.get(key); ok {
			s.metrics.submitted.Add(1)
			s.metrics.cacheHits.Add(1)
			s.metrics.completed.Add(1)
			t := s.metrics.tenant(norm.Tenant)
			t.submitted.Add(1)
			t.completed.Add(1)
			job.State = StateDone
			job.CacheHit = true
			job.Result = res
			job.Started, job.Finished = job.Submitted, job.Submitted
			s.store(job)
			s.events.publish(doneEvent(job))
			out[i].Status = job.status()
			continue
		}
		job.State = StateQueued
		if err := s.queue.Push(norm.Tenant, job, false); err != nil {
			s.seq-- // the ID was never exposed; reuse it
			s.metrics.rejected.Add(1)
			s.metrics.tenant(norm.Tenant).rejected.Add(1)
			out[i].Err = fmt.Errorf("%w (%v)", ErrQueueFull, err)
			continue
		}
		s.metrics.submitted.Add(1)
		s.metrics.cacheMisses.Add(1)
		s.metrics.queued.Add(1)
		s.metrics.tenant(norm.Tenant).submitted.Add(1)
		s.store(job)
		s.events.publish(JobEvent{Type: "queued", Job: job.ID, Tenant: norm.Tenant})
		out[i].Status = job.status()
		if s.journal != nil {
			specCopy := norm
			recs = append(recs, jobRecord{Op: "submit", ID: job.ID, Tenant: norm.Tenant, Spec: &specCopy})
			acked = append(acked, i)
		}
	}
	s.mu.Unlock()

	if len(recs) > 0 {
		// One write+sync for the whole batch, after the jobs are live:
		// the acknowledgement below is what promises durability, so it
		// must wait for the sync. A failure here degrades this batch to
		// the journal-less contract (the jobs still run) and reports it.
		if err := s.journal.appendSubmits(recs); err != nil {
			for _, i := range acked {
				out[i].Err = fmt.Errorf("job %s accepted but not journaled: %w", out[i].Status.ID, err)
			}
		}
	}
	return out
}

// doneEvent builds the terminal event of a finished job. Callers hold
// the service mutex.
func doneEvent(job *Job) JobEvent {
	ev := JobEvent{
		Type: "done", Job: job.ID, Tenant: job.Spec.Tenant,
		State: job.State, CacheHit: job.CacheHit, Error: job.Error,
		ElapsedMS: job.Finished.Sub(job.Submitted).Milliseconds(),
	}
	if job.Result != nil {
		ev.Success = job.Result.Success
		ev.Reps = job.Result.Reps
		ev.SuccessRate = job.Result.SuccessRate
	}
	return ev
}

// store indexes a job and evicts the oldest finished records beyond
// twice the cache size, so the store cannot grow without bound. Evicted
// jobs take their event streams with them.
func (s *Service) store(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	limit := 2 * s.cfg.CacheSize
	for len(s.order) > limit {
		old, ok := s.jobs[s.order[0]]
		if ok && (old.State == StateQueued || old.State == StateRunning) {
			break // never evict live work
		}
		delete(s.jobs, s.order[0])
		s.events.drop(s.order[0])
		s.order = s.order[1:]
	}
}

// Job returns the status of one job.
func (s *Service) Job(id string) (JobStatus, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return job.status(), true
}

// Jobs returns the status of every retained job, oldest first.
func (s *Service) Jobs() []JobStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		if job, ok := s.jobs[id]; ok {
			out = append(out, job.status())
		}
	}
	return out
}

// status must be called with the service mutex held.
func (j *Job) status() JobStatus {
	st := JobStatus{
		ID: j.ID, State: j.State, Spec: j.Spec,
		CacheHit: j.CacheHit, Error: j.Error, Result: j.Result,
	}
	if !j.Finished.IsZero() {
		st.ElapsedMS = j.Finished.Sub(j.Submitted).Milliseconds()
	}
	return st
}

// worker drains the queue until Close closes it, running one job at a
// time with panic isolation and the per-job timeout. The fair queue
// decides whose job is next; Done returns the tenant's concurrency
// slot.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		job, tenant, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.metrics.queued.Add(-1)
		s.metrics.running.Add(1)
		s.transition(job, StateRunning)
		res, err := s.runIsolated(job)
		s.finish(job, res, err)
		s.metrics.running.Add(-1)
		s.queue.Done(tenant)
	}
}

// runIsolated executes the job's spec on a fresh goroutine so that a
// panic or a runaway repetition is confined to the job: the worker
// converts a panic into a job failure and a timeout abandons the run at
// its next repetition boundary. Per-repetition progress is streamed
// onto the job's event channel.
func (s *Service) runIsolated(job *Job) (*JobResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	defer cancel()
	ctx = withProgress(ctx, func(rep, reps int) {
		s.events.publish(JobEvent{
			Type: "progress", Job: job.ID, Tenant: job.Spec.Tenant,
			Rep: rep, Reps: reps,
		})
	})
	type outcome struct {
		res *JobResult
		err error
	}
	// Buffered so an abandoned (timed-out) run's final send never blocks.
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("job panicked: %v", r)}
			}
		}()
		res, err := s.cfg.exec(ctx, job.Spec)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		// The runner sees ctx.Done at its next rep boundary and exits;
		// the job is reported failed now.
		return nil, fmt.Errorf("job exceeded timeout %v", s.cfg.JobTimeout)
	}
}

func (s *Service) transition(job *Job, state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job.State = state
	if state == StateRunning {
		job.Started = s.cfg.now()
		s.events.publish(JobEvent{Type: "running", Job: job.ID, Tenant: job.Spec.Tenant})
	}
}

func (s *Service) finish(job *Job, res *JobResult, err error) {
	if err == nil {
		// Move any recorded trace into the content-addressed store and
		// keep only its ID: the result (cached and shared by reference)
		// must not pin megabytes of trace bytes, and the store's byte cap
		// is the single bound on resident trace data.
		if res.traceData != nil {
			res.TraceID = s.traces.put(res.traceData)
			res.traceData = nil
		}
		s.cache.put(job.Key, res)
		s.metrics.completed.Add(1)
		s.metrics.observe(job.Spec.Protocol, res)
	} else {
		s.metrics.failed.Add(1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	job.Finished = s.cfg.now()
	if err != nil {
		job.State = StateFailed
		job.Error = err.Error()
		s.metrics.tenant(job.Spec.Tenant).failed.Add(1)
	} else {
		job.State = StateDone
		job.Result = res
		s.metrics.tenant(job.Spec.Tenant).completed.Add(1)
	}
	s.events.publish(doneEvent(job))
	if s.journal != nil {
		// Group-committed: the flusher coalesces completion bursts into
		// one sync. A crash inside that window replays the job as
		// pending and re-runs it to the same bytes.
		s.journal.recordDone(jobRecord{
			Op: "done", ID: job.ID, Spec: &job.Spec, Key: job.Key,
			State: job.State, Error: job.Error, Result: job.Result,
		})
	}
}

// Draining reports whether Close has been called.
func (s *Service) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// QueueDepth returns the number of queued jobs.
func (s *Service) QueueDepth() int { return int(s.metrics.queued.Load()) }

// TenantDepths reports the per-tenant queue state.
func (s *Service) TenantDepths() []quota.TenantDepth { return s.queue.Depths() }

// Close drains the service: new submissions are rejected with ErrClosed,
// queued and in-flight jobs run to completion, workers exit, and the
// journal (when present) absorbs their completion records before it
// closes. It returns ctx.Err if the drain outlives ctx (workers are then
// abandoned; the process is expected to exit — the journal replays what
// they left behind).
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.queue.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.journal != nil {
			return s.journal.close()
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain interrupted: %w", ctx.Err())
	}
}
