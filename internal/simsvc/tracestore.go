package simsvc

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// traceStore is a content-addressed, byte-capped LRU over recorded
// execution traces. Keys are the hex SHA-256 of the trace bytes, so a
// deposit is idempotent: identical runs (same normalized spec → same
// deterministic trace) share one entry, and a fetched trace can be
// integrity-checked by rehashing. Unlike the result cache it is bounded
// in bytes, not entries — traces of large-n jobs dwarf their JSON
// results, and the cap is what keeps a burst of traced jobs from
// growing the daemon without bound.
type traceStore struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	written  int64      // total bytes ever deposited (monotonic)
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
}

type traceEntry struct {
	id   string
	data []byte
}

func newTraceStore(maxBytes int64) *traceStore {
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &traceStore{maxBytes: maxBytes, ll: list.New(), entries: make(map[string]*list.Element)}
}

// put deposits a trace and returns its content address. A trace larger
// than the whole store is hashed but not retained — the ID is still
// returned so the result is well-formed, and the fetch will 404.
func (t *traceStore) put(data []byte) string {
	sum := sha256.Sum256(data)
	id := hex.EncodeToString(sum[:])
	t.mu.Lock()
	defer t.mu.Unlock()
	t.written += int64(len(data))
	if el, ok := t.entries[id]; ok {
		t.ll.MoveToFront(el)
		return id
	}
	if int64(len(data)) > t.maxBytes {
		return id
	}
	t.entries[id] = t.ll.PushFront(&traceEntry{id, data})
	t.bytes += int64(len(data))
	for t.bytes > t.maxBytes {
		oldest := t.ll.Back()
		t.ll.Remove(oldest)
		e := oldest.Value.(*traceEntry)
		delete(t.entries, e.id)
		t.bytes -= int64(len(e.data))
	}
	return id
}

// get returns the trace bytes for an id. The bytes are shared by
// reference; callers must not mutate them.
func (t *traceStore) get(id string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.entries[id]
	if !ok {
		return nil, false
	}
	t.ll.MoveToFront(el)
	return el.Value.(*traceEntry).data, true
}

// stats returns (entries, resident bytes, total bytes ever written).
func (t *traceStore) stats() (entries int, bytes, written int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ll.Len(), t.bytes, t.written
}
