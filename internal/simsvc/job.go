// Package simsvc is the simulation-as-a-service layer: a job queue, a
// worker pool, a seed-keyed result cache, and an HTTP API over the
// protocols and experiments this repository implements. One long-running
// daemon (cmd/simd) replaces process-per-run invocations of cmd/ftle,
// cmd/ftagree and cmd/experiments: jobs are small independent Monte Carlo
// runs, exactly the workload a pool plus cache serves best. Because every
// engine is deterministic in its seed, a cached result is exact — an
// identical resubmission is a true replay, not an approximation.
package simsvc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"sublinear/internal/fault"
	"sublinear/internal/topo"
)

// Protocols accepted by JobSpec.Protocol. The core three run the paper's
// algorithms through the public sublinear API; the baseline names run the
// Table-I comparators; "experiment" replays a registered experiment
// (E1–E14) from the shared internal/experiment registry; "dst" runs a
// deterministic-simulation fuzzing campaign (internal/dst) over the real
// protocols, where Reps is the case budget and a "success" is a case
// with no engine divergence and no oracle violation; "mc" exhaustively
// model-checks one dst system's bounded schedule universe (internal/mc)
// over the index range [Lo, Hi), which is how the fleet shards one
// exhaustive run across workers.
const (
	ProtoElection   = "election"
	ProtoAgreement  = "agreement"
	ProtoMinAgree   = "minagree"
	ProtoExperiment = "experiment"
	ProtoDST        = "dst"
	ProtoMC         = "mc"
)

// baselineProtocols maps the JobSpec spelling of each Table-I comparator.
var baselineProtocols = map[string]bool{
	"gk": true, "floodset": true, "gossip": true, "rotating": true,
	"allpairs": true, "kutten": true, "amp": true,
}

// topologyProtocols run on internal/topo instead of the clique engines
// and accept the Topology field: leader election on diameter-two graphs
// ("d2election") and on well-connected expanders ("wcelection").
// defaultTopology is each protocol's native graph family, resolved into
// the spec so two spellings of the default share one cache entry.
var defaultTopology = map[string]string{
	"d2election": "cluster-d2",
	"wcelection": "wellconnected",
}

// Protocols returns every accepted protocol name, sorted.
func Protocols() []string {
	out := []string{ProtoElection, ProtoAgreement, ProtoMinAgree, ProtoExperiment, ProtoDST, ProtoMC}
	for p := range baselineProtocols {
		out = append(out, p)
	}
	for p := range defaultTopology {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// JobSpec is one simulation job as submitted over the API. The zero value
// of every optional field means "the default"; Normalize resolves the
// defaults so two spellings of the same job share one cache entry.
type JobSpec struct {
	// Tenant is the submitting tenant's label, the unit of admission
	// control: queue-depth and concurrency budgets and fair-share weight
	// are per tenant (internal/quota). Empty normalizes to "default".
	// Deliberately excluded from Key(): results are deterministic in the
	// spec, so tenants share the result cache — a label must not split
	// identical work into duplicate runs.
	Tenant string `json:"tenant,omitempty"`
	// Protocol selects the algorithm; see Protocols().
	Protocol string `json:"protocol"`
	// N is the network size (core protocols and baselines).
	N int `json:"n,omitempty"`
	// Alpha is the guaranteed non-faulty fraction; 0 means 0.5.
	Alpha float64 `json:"alpha,omitempty"`
	// F is the faulty-node count; nil derives (1-alpha)*n, 0 is
	// fault-free.
	F *int `json:"f,omitempty"`
	// POne is P[input bit = 1] for agreement workloads; 0 means 0.5.
	POne float64 `json:"pone,omitempty"`
	// Policy is the crash-round delivery policy (all|none|half|random);
	// empty means half.
	Policy string `json:"policy,omitempty"`
	// Engine selects the execution engine (seq|concurrent|actors); empty
	// means seq. All engines are deterministic per seed. For topology
	// protocols the engine maps onto the topo pipeline's worker count
	// (1, GOMAXPROCS, 2) — digests are identical across all of them.
	Engine string `json:"engine,omitempty"`
	// Topology names the graph family a topology protocol runs on (see
	// topo.TopologyNames); empty resolves the protocol's native family
	// (cluster-d2 for d2election, wellconnected for wcelection). Only
	// valid for topology protocols.
	Topology string `json:"topology,omitempty"`
	// Explicit runs the explicit extension of election/agreement.
	Explicit bool `json:"explicit,omitempty"`
	// Hunter uses the adaptive committee-hunting adversary (election).
	Hunter bool `json:"hunter,omitempty"`
	// Late crashes all faulty nodes after the election (footnote 3).
	Late bool `json:"late,omitempty"`
	// Seed is the base seed; repetition r runs with Seed + r*7919.
	Seed uint64 `json:"seed"`
	// Reps is the repetition count; 0 means 1.
	Reps int `json:"reps,omitempty"`
	// Experiment is the registered experiment ID (protocol "experiment").
	Experiment string `json:"experiment,omitempty"`
	// System names the dst-registered system a model-checking job
	// explores (protocol "mc").
	System string `json:"system,omitempty"`
	// Horizon bounds the crash rounds a model-checking job enumerates;
	// 0 resolves the system's own horizon.
	Horizon int `json:"horizon,omitempty"`
	// Policies is the comma-separated drop-policy palette of a
	// model-checking job (e.g. "all,half,none"); empty means the
	// deterministic palette.
	Policies string `json:"policies,omitempty"`
	// Lo and Hi delimit the schedule-index range [Lo, Hi) a
	// model-checking job scans; Hi 0 means the whole universe. Disjoint
	// ranges over the same universe are shards of one exhaustive run.
	Lo int64 `json:"lo,omitempty"`
	Hi int64 `json:"hi,omitempty"`
	// Quick shrinks experiment sweeps to CI scale.
	Quick bool `json:"quick,omitempty"`
	// Raw asks for the per-repetition series (messages, bits, rounds,
	// outcome per rep) alongside the aggregates, so a distributed caller
	// (internal/fleet) can merge shards into statistics bit-identical to
	// a single-process run. Core protocols and baselines only.
	Raw bool `json:"raw,omitempty"`
	// Trace records one repetition's execution trace (internal/trace)
	// alongside the result: the first failed repetition if any failed,
	// the first repetition otherwise. The trace is deposited in the
	// daemon's content-addressed trace store and referenced by the
	// result's TraceID for GET /v1/traces/{id}. Core protocols and
	// baselines only; costs one extra (deterministic) repetition when
	// the traced rep is not rep 0.
	Trace bool `json:"trace,omitempty"`
}

// Limits bound what a single job may ask for, so one request cannot pin a
// worker for hours. They are service configuration, not protocol limits.
type Limits struct {
	MaxN    int
	MaxReps int
}

// DefaultLimits are the daemon defaults.
var DefaultLimits = Limits{MaxN: 1 << 16, MaxReps: 1000}

// Normalize validates the spec against the limits and resolves every
// default to its concrete value. The returned spec is canonical: two
// specs describing the same job normalize identically, which is what the
// cache key hashes.
// DefaultTenant is the tenant label of unlabelled submissions.
const DefaultTenant = "default"

func (s JobSpec) Normalize(lim Limits) (JobSpec, error) {
	out := s
	out.Tenant = strings.ToLower(strings.TrimSpace(s.Tenant))
	if out.Tenant == "" {
		out.Tenant = DefaultTenant
	}
	out.Protocol = strings.ToLower(strings.TrimSpace(s.Protocol))
	core := out.Protocol == ProtoElection || out.Protocol == ProtoAgreement || out.Protocol == ProtoMinAgree
	switch {
	case core, baselineProtocols[out.Protocol], defaultTopology[out.Protocol] != "":
	case out.Protocol == ProtoDST:
		// The campaign picks its own sizes and adversaries; only the seed
		// and the case budget (Reps) matter. Zero the rest so irrelevant
		// fields cannot split the cache.
		out.N, out.Alpha, out.F, out.POne = 0, 0, nil, 0
		out.Policy, out.Engine = "", ""
		out.Explicit, out.Hunter, out.Late = false, false, false
		out.Experiment, out.Quick = "", false
		out.Raw, out.Trace = false, false
		out.Topology = ""
		out.System, out.Horizon, out.Policies, out.Lo, out.Hi = "", 0, "", 0, 0
		if out.Reps == 0 {
			out.Reps = 25
		}
		if out.Reps < 1 || out.Reps > lim.MaxReps {
			return out, fmt.Errorf("reps %d out of range [1, %d]", out.Reps, lim.MaxReps)
		}
		return out, nil
	case out.Protocol == ProtoMC:
		// Exhaustive model checking: the universe is (System, N, Alpha,
		// Horizon, Policies, Seed) and the work is the index range
		// [Lo, Hi). MaxF rides in F. Everything else is zeroed so
		// irrelevant fields cannot split the cache; mc.Config.Resolve
		// validates the semantic fields at run time against the system's
		// registration.
		out.Policy, out.Engine = "", ""
		out.Explicit, out.Hunter, out.Late = false, false, false
		out.Experiment, out.Quick = "", false
		out.Raw, out.Trace = false, false
		out.Topology = ""
		out.Reps = 1
		if out.System == "" {
			return out, fmt.Errorf("mc jobs need a system name")
		}
		if out.N < 2 || out.N > lim.MaxN {
			return out, fmt.Errorf("n %d out of range [2, %d]", out.N, lim.MaxN)
		}
		if out.Alpha < 0 || out.Alpha > 1 {
			return out, fmt.Errorf("alpha %v out of range [0, 1] (0 = system default)", out.Alpha)
		}
		if out.POne < 0 || out.POne > 1 {
			return out, fmt.Errorf("pone %v out of range [0, 1]", out.POne)
		}
		if out.F == nil {
			derive := -1 // mc derives the system's crash budget
			out.F = &derive
		}
		if out.Policies != "" {
			for _, p := range strings.Split(out.Policies, ",") {
				if _, err := fault.ParsePolicy(strings.TrimSpace(p)); err != nil {
					return out, err
				}
			}
		}
		if out.Lo < 0 || (out.Hi != 0 && out.Hi <= out.Lo) {
			return out, fmt.Errorf("index range [%d, %d) is empty or negative", out.Lo, out.Hi)
		}
		return out, nil
	case out.Protocol == ProtoExperiment:
		if out.Experiment == "" {
			return out, fmt.Errorf("experiment jobs need an experiment ID")
		}
		// N, faults, engine are the experiment's business; zero them so
		// irrelevant fields cannot split the cache.
		out.N, out.Alpha, out.F, out.POne = 0, 0, nil, 0
		out.Policy, out.Engine = "", ""
		out.Explicit, out.Hunter, out.Late = false, false, false
		out.Raw, out.Trace = false, false
		out.Topology = ""
		out.System, out.Horizon, out.Policies, out.Lo, out.Hi = "", 0, "", 0, 0
		out.Reps = 1
		return out, nil
	default:
		return out, fmt.Errorf("unknown protocol %q (want one of %s)",
			s.Protocol, strings.Join(Protocols(), "|"))
	}
	out.Experiment, out.Quick = "", false
	out.System, out.Horizon, out.Policies, out.Lo, out.Hi = "", 0, "", 0, 0
	if out.Reps == 0 {
		out.Reps = 1
	}
	if out.Reps < 1 || out.Reps > lim.MaxReps {
		return out, fmt.Errorf("reps %d out of range [1, %d]", out.Reps, lim.MaxReps)
	}
	if out.N < 2 || out.N > lim.MaxN {
		return out, fmt.Errorf("n %d out of range [2, %d]", out.N, lim.MaxN)
	}
	if out.Alpha == 0 {
		out.Alpha = 0.5
	}
	if out.Alpha < 0 || out.Alpha > 1 {
		return out, fmt.Errorf("alpha %v out of range (0, 1]", out.Alpha)
	}
	if out.F == nil {
		f := int((1 - out.Alpha) * float64(out.N))
		out.F = &f
	}
	if *out.F < 0 || *out.F >= out.N {
		return out, fmt.Errorf("f %d out of range [0, n)", *out.F)
	}
	if out.POne == 0 {
		out.POne = 0.5
	}
	if out.POne < 0 || out.POne > 1 {
		return out, fmt.Errorf("pone %v out of range [0, 1]", out.POne)
	}
	if out.Policy == "" {
		out.Policy = "half"
	}
	switch out.Policy {
	case "all", "none", "half", "random":
	default:
		return out, fmt.Errorf("unknown policy %q (want all|none|half|random)", out.Policy)
	}
	if out.Engine == "" {
		out.Engine = "seq"
	}
	switch out.Engine {
	case "seq", "concurrent", "actors":
	default:
		return out, fmt.Errorf("unknown engine %q (want seq|concurrent|actors)", out.Engine)
	}
	if native := defaultTopology[out.Protocol]; native != "" {
		if out.Topology == "" {
			out.Topology = native
		}
		if !knownTopology(out.Topology) {
			return out, fmt.Errorf("unknown topology %q (want one of %s)",
				out.Topology, strings.Join(topo.TopologyNames(), "|"))
		}
	} else if out.Topology != "" {
		return out, fmt.Errorf("protocol %q does not take a topology", out.Protocol)
	}
	return out, nil
}

// knownTopology reports whether name is a ResolveTopology family.
func knownTopology(name string) bool {
	for _, t := range topo.TopologyNames() {
		if t == name {
			return true
		}
	}
	return false
}

// Key returns the content address of a normalized spec: the hex SHA-256
// of its canonical encoding. Identical jobs — same protocol, parameters,
// engine, and seed — share a key, and deterministic engines make the
// cached result under that key exact. Tenant is not part of the
// encoding: it labels who asked, not what runs.
func (s JobSpec) Key() string {
	f := -1
	if s.F != nil {
		f = *s.F
	}
	canon := fmt.Sprintf("v5|%s|n=%d|alpha=%g|f=%d|pone=%g|policy=%s|engine=%s|topo=%s|x=%t|h=%t|l=%t|seed=%d|reps=%d|exp=%s|quick=%t|raw=%t|trace=%t|sys=%s|hor=%d|pols=%s|lo=%d|hi=%d",
		s.Protocol, s.N, s.Alpha, f, s.POne, s.Policy, s.Engine, s.Topology,
		s.Explicit, s.Hunter, s.Late, s.Seed, s.Reps, s.Experiment, s.Quick, s.Raw, s.Trace,
		s.System, s.Horizon, s.Policies, s.Lo, s.Hi)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}
