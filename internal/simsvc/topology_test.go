package simsvc

import (
	"context"
	"strings"
	"testing"
)

// TestNormalizeTopology pins the topology field's contract: topology
// protocols default to their native family, unknown families and
// topology-on-clique-protocol specs are rejected, and the family is
// part of the cache identity.
func TestNormalizeTopology(t *testing.T) {
	d2, err := JobSpec{Protocol: "d2election", N: 64}.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Topology != "cluster-d2" {
		t.Fatalf("d2election default topology = %q, want cluster-d2", d2.Topology)
	}
	wc, err := JobSpec{Protocol: "wcelection", N: 64}.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if wc.Topology != "wellconnected" {
		t.Fatalf("wcelection default topology = %q, want wellconnected", wc.Topology)
	}
	star, err := JobSpec{Protocol: "d2election", N: 64, Topology: "star"}.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if star.Key() == d2.Key() {
		t.Fatal("different topologies share a cache key")
	}
	if _, err := (JobSpec{Protocol: "d2election", N: 64, Topology: "torus"}).Normalize(DefaultLimits); err == nil ||
		!strings.Contains(err.Error(), "unknown topology") {
		t.Fatalf("bogus topology: err = %v, want unknown topology", err)
	}
	if _, err := (JobSpec{Protocol: "election", N: 64, Topology: "star"}).Normalize(DefaultLimits); err == nil ||
		!strings.Contains(err.Error(), "does not take a topology") {
		t.Fatalf("topology on clique protocol: err = %v, want rejection", err)
	}
}

// TestRunTopologyJob runs one d2election job end to end through the
// service dispatch: every repetition must elect on the requested family.
func TestRunTopologyJob(t *testing.T) {
	spec, err := JobSpec{Protocol: "d2election", N: 32, Topology: "star", Seed: 5, Reps: 3}.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success != 3 {
		t.Fatalf("success = %d/3 (failures %v)", res.Success, res.Failures)
	}
	if res.PerKind["d2-announce"] == 0 || res.PerKind["d2-reply"] == 0 {
		t.Fatalf("per-kind accounting missing announce/reply: %v", res.PerKind)
	}
}
