package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"sublinear"
	"sublinear/internal/baseline"
	"sublinear/internal/dst"
	"sublinear/internal/experiment"
	"sublinear/internal/fault"
	"sublinear/internal/mc"
	"sublinear/internal/metrics"
	"sublinear/internal/netsim"
	"sublinear/internal/rng"
	"sublinear/internal/stats"
	"sublinear/internal/topo"
	"sublinear/internal/trace"
)

// JobResult is the aggregated outcome of one job's repetitions.
type JobResult struct {
	// Success counts repetitions whose protocol-level evaluation passed.
	Success int `json:"success"`
	// Reps is the number of repetitions actually run.
	Reps int `json:"reps"`
	// SuccessRate is Success/Reps with its 95% Wilson interval.
	SuccessRate float64 `json:"successRate"`
	CILow       float64 `json:"ciLow"`
	CIHigh      float64 `json:"ciHigh"`
	// Messages, Bits, Rounds summarise the per-repetition counters.
	Messages stats.Summary `json:"messages"`
	Bits     stats.Summary `json:"bits"`
	Rounds   stats.Summary `json:"rounds"`
	// PerKind is the message-kind breakdown summed over repetitions.
	PerKind map[string]int64 `json:"perKind,omitempty"`
	// Failures lists distinct failure reasons (deduplicated, capped).
	Failures []string `json:"failures,omitempty"`
	// Report is the rendered text report for experiment jobs.
	Report string `json:"report,omitempty"`
	// MC is the model-checking report for "mc" jobs: resolved config,
	// explored index range, and the state-space accounting. Its repro
	// files ride in Failures as "desc repro={json}" strings, same as dst
	// jobs. A success is a violation-free range.
	MC *mc.Report `json:"mc,omitempty"`
	// Raw is the per-repetition series, present when the spec asked for
	// it (JobSpec.Raw). Entry r of every slice belongs to repetition r.
	Raw *RawSeries `json:"raw,omitempty"`
	// TraceID is the content address of the recorded execution trace
	// when the spec asked for one (JobSpec.Trace); fetch the bytes from
	// GET /v1/traces/{id}. Set by the service when it deposits the
	// trace in its store.
	TraceID string `json:"traceId,omitempty"`
	// TraceRep is the repetition the trace records (the first failed
	// repetition, or 0 when all succeeded). Meaningful with TraceID.
	TraceRep int `json:"traceRep,omitempty"`

	// traceData carries the recorded trace from the runner to the
	// service, which moves it into the trace store and replaces it with
	// TraceID. Unexported: never serialized, never cached.
	traceData []byte
}

// RawSeries carries per-repetition observations in repetition order. It
// exists so shards of one logical run, executed on different workers,
// can be concatenated and re-summarized into statistics bit-identical
// to an unsharded run: summary quantities like the median and P90 are
// not mergeable from per-shard summaries, only from the samples.
type RawSeries struct {
	Messages []int64 `json:"messages"`
	Bits     []int64 `json:"bits"`
	Rounds   []int64 `json:"rounds"`
	Success  []bool  `json:"success"`
	// Reasons[r] is the failure reason of repetition r, "" on success.
	Reasons []string `json:"reasons"`
}

// repOutcome is what one repetition of any protocol produces.
type repOutcome struct {
	counters *metrics.Counters
	rounds   int
	success  bool
	reason   string
}

// runSpec executes a normalized spec, checking ctx between repetitions so
// a timed-out or draining job stops at the next rep boundary.
func runSpec(ctx context.Context, spec JobSpec) (*JobResult, error) {
	if spec.Protocol == ProtoExperiment {
		return runExperiment(spec)
	}
	if spec.Protocol == ProtoDST {
		return runDST(ctx, spec)
	}
	if spec.Protocol == ProtoMC {
		return runMC(ctx, spec)
	}
	res := &JobResult{PerKind: map[string]int64{}}
	if spec.Raw {
		res.Raw = &RawSeries{}
	}
	progress := progressFn(ctx)
	var msgs, bits, rounds []float64
	agg := new(metrics.Counters)
	seen := map[string]bool{}
	for rep := 0; rep < spec.Reps; rep++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cancelled after %d/%d reps: %w", rep, spec.Reps, err)
		}
		progress(rep, spec.Reps)
		out, err := runOnce(spec, repSeed(spec, rep), nil)
		if err != nil {
			return nil, err
		}
		res.Reps++
		if res.Raw != nil {
			res.Raw.Messages = append(res.Raw.Messages, out.counters.Messages())
			res.Raw.Bits = append(res.Raw.Bits, out.counters.Bits())
			res.Raw.Rounds = append(res.Raw.Rounds, int64(out.rounds))
			res.Raw.Success = append(res.Raw.Success, out.success)
			reason := ""
			if !out.success {
				reason = out.reason
			}
			res.Raw.Reasons = append(res.Raw.Reasons, reason)
		}
		// Each repetition's counters are owned by this worker; Snapshot +
		// MergeSnapshot is the race-free aggregation contract.
		agg.MergeSnapshot(out.counters.Snapshot())
		msgs = append(msgs, float64(out.counters.Messages()))
		bits = append(bits, float64(out.counters.Bits()))
		rounds = append(rounds, float64(out.rounds))
		if out.success {
			res.Success++
		} else if !seen[out.reason] && len(res.Failures) < 8 {
			seen[out.reason] = true
			res.Failures = append(res.Failures, out.reason)
		}
	}
	res.Messages = stats.Summarize(msgs)
	res.Bits = stats.Summarize(bits)
	res.Rounds = stats.Summarize(rounds)
	res.SuccessRate = float64(res.Success) / float64(res.Reps)
	res.CILow, res.CIHigh = stats.WilsonInterval(res.Success, res.Reps)
	res.PerKind = agg.Snapshot().PerKind
	if spec.Trace {
		if err := recordTrace(spec, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// recordTrace re-runs the most interesting repetition — the first one
// that failed, or rep 0 when all passed — with a flight recorder
// attached, and stashes the trace bytes on the result for the service
// to deposit. Repetitions are deterministic in their seed, so the
// re-run is an exact replay of what the aggregate already counted.
func recordTrace(spec JobSpec, res *JobResult) error {
	rep := 0
	if res.Raw != nil {
		for r, passed := range res.Raw.Success {
			if !passed {
				rep = r
				break
			}
		}
	} else if res.Success > 0 && res.Success < res.Reps {
		// Without the raw series we know something failed but not which
		// rep (when everything failed, rep 0 already is a failed rep);
		// find the first failure the same way the loop did.
		for r := 0; r < res.Reps; r++ {
			out, err := runOnce(spec, repSeed(spec, r), nil)
			if err != nil {
				return err
			}
			if !out.success {
				rep = r
				break
			}
		}
	}
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf, trace.Header{
		N: spec.N, Seed: repSeed(spec, rep), Label: spec.Protocol,
	})
	if err != nil {
		return err
	}
	if _, err := runOnce(spec, repSeed(spec, rep), rec); err != nil {
		return err
	}
	if err := rec.Close(); err != nil {
		return fmt.Errorf("trace of rep %d: %w", rep, err)
	}
	res.TraceRep = rep
	res.traceData = buf.Bytes()
	return nil
}

// repSeed is the seed of repetition r, shared by the aggregation loop
// and the trace re-run.
func repSeed(spec JobSpec, r int) uint64 { return spec.Seed + uint64(r)*7919 }

// runOnce executes one repetition at one seed. tracer is nil except for
// the trace re-run.
func runOnce(spec JobSpec, seed uint64, tracer netsim.Tracer) (repOutcome, error) {
	switch spec.Protocol {
	case ProtoElection, ProtoAgreement, ProtoMinAgree:
		return runCore(spec, seed, tracer)
	default:
		return runBaseline(spec, seed, tracer)
	}
}

// coreOptions translates a normalized spec into sublinear.Options.
func coreOptions(spec JobSpec, seed uint64, tracer netsim.Tracer) sublinear.Options {
	opts := sublinear.Options{
		N: spec.N, Alpha: spec.Alpha, Seed: seed,
		Explicit:   spec.Explicit,
		Concurrent: spec.Engine == "concurrent",
		Actors:     spec.Engine == "actors",
		Tracer:     tracer,
	}
	if f := *spec.F; f > 0 {
		opts.Faults = &sublinear.FaultModel{
			Faulty: f, Policy: parsePolicy(spec.Policy),
			Hunter: spec.Hunter, CrashAfterElection: spec.Late,
		}
	}
	return opts
}

// engineWorkers maps the spec's engine name onto the topology engine's
// worker count: the sequential engine is the single-worker schedule, the
// concurrent engine uses GOMAXPROCS sharding, and the actor engine's
// closest analogue is a small fixed shard count.
func engineWorkers(engine string) int {
	switch engine {
	case "concurrent":
		return 0
	case "actors":
		return 2
	default:
		return 1
	}
}

func parsePolicy(s string) sublinear.DropPolicy {
	switch s {
	case "all":
		return sublinear.DropAll
	case "none":
		return sublinear.DropNone
	case "random":
		return sublinear.DropRandom
	default:
		return sublinear.DropHalf
	}
}

func runCore(spec JobSpec, seed uint64, tracer netsim.Tracer) (repOutcome, error) {
	opts := coreOptions(spec, seed, tracer)
	switch spec.Protocol {
	case ProtoElection:
		res, err := sublinear.Elect(opts)
		if err != nil {
			return repOutcome{}, err
		}
		return repOutcome{res.Counters, res.Rounds, res.Eval.Success, res.Eval.Reason}, nil
	case ProtoAgreement:
		inputs := sublinear.RandomInputs(spec.N, spec.POne, seed^0xbeef)
		res, err := sublinear.Agree(opts, inputs)
		if err != nil {
			return repOutcome{}, err
		}
		return repOutcome{res.Counters, res.Rounds, res.Eval.Success, res.Eval.Reason}, nil
	default: // minagree
		src := rng.New(seed ^ 0x313a6)
		values := make([]uint64, spec.N)
		for i := range values {
			values[i] = uint64(src.Int64n(int64(spec.N) * 16))
		}
		res, err := sublinear.AgreeMin(opts, values)
		if err != nil {
			return repOutcome{}, err
		}
		return repOutcome{res.Counters, res.Rounds, res.Eval.Success, res.Eval.Reason}, nil
	}
}

// runBaseline dispatches the Table-I comparators with the same adversary
// family the experiment harness uses.
func runBaseline(spec JobSpec, seed uint64, tracer netsim.Tracer) (repOutcome, error) {
	n, f := spec.N, *spec.F
	inputs := sublinear.RandomInputs(n, spec.POne, seed^0xbeef)
	src := rng.New(seed ^ 0xadd5)
	// Normalize has already bounded n, f, and the policy, so the only
	// way the constructor can fail here is a harness bug — surface it.
	plan := func(horizon int) *fault.Plan {
		return fault.Must(fault.NewRandomPlan(n, f, horizon, parsePolicy(spec.Policy), src))
	}
	var (
		res *baseline.Result
		err error
	)
	switch spec.Protocol {
	case "gk":
		res, err = baseline.RunGK(baseline.GKConfig{N: n, Seed: seed, Tracer: tracer}, inputs, plan(20))
	case "floodset":
		res, err = baseline.RunFloodSet(baseline.FloodSetConfig{N: n, Seed: seed, F: f, Tracer: tracer}, inputs, plan(f+1))
	case "gossip":
		res, err = baseline.RunGossip(baseline.GossipConfig{N: n, Seed: seed, Tracer: tracer}, inputs, plan(20))
	case "rotating":
		res, err = baseline.RunRotating(baseline.RotatingConfig{N: n, Seed: seed, F: f, Tracer: tracer}, inputs, plan(f+1))
	case "allpairs":
		res, err = baseline.RunAllPairs(baseline.AllPairsConfig{N: n, Seed: seed, F: f, Tracer: tracer}, plan(f+1))
	case "kutten":
		res, err = baseline.RunKutten(baseline.KuttenConfig{N: n, Seed: seed, Tracer: tracer})
	case "amp":
		res, err = baseline.RunAMP(baseline.AMPConfig{N: n, Seed: seed, Tracer: tracer}, inputs)
	case "d2election":
		tp, terr := topo.ResolveTopology(spec.Topology, n, seed)
		if terr != nil {
			return repOutcome{}, terr
		}
		res, err = baseline.RunD2Election(baseline.D2Config{
			N: n, Seed: seed, Topology: tp, Workers: engineWorkers(spec.Engine), Tracer: tracer,
		}, plan(3))
	case "wcelection":
		tp, terr := topo.ResolveTopology(spec.Topology, n, seed)
		if terr != nil {
			return repOutcome{}, terr
		}
		res, err = baseline.RunWCElection(baseline.WCConfig{
			N: n, Seed: seed, Topology: tp, Workers: engineWorkers(spec.Engine), Tracer: tracer,
		}, plan(3))
	default:
		return repOutcome{}, fmt.Errorf("unknown baseline %q", spec.Protocol)
	}
	if err != nil {
		return repOutcome{}, err
	}
	return repOutcome{res.Counters, res.Rounds, res.Success, res.Reason}, nil
}

// runDST runs one deterministic-simulation fuzzing campaign over the
// real protocols; each case is one "repetition", a success is a case
// with no engine divergence and no oracle violation, and each failure
// reason carries the minimized reproducer so the submitter can replay
// it with `dstrun -repro`.
func runDST(ctx context.Context, spec JobSpec) (*JobResult, error) {
	camp, err := dst.RunCampaign(ctx, dst.CampaignConfig{Cases: spec.Reps, Seed: spec.Seed}, nil)
	if err != nil {
		return nil, err
	}
	res := &JobResult{
		Reps:    camp.Cases,
		Success: camp.Cases - len(camp.Failures),
	}
	if res.Reps > 0 {
		res.SuccessRate = float64(res.Success) / float64(res.Reps)
		res.CILow, res.CIHigh = stats.WilsonInterval(res.Success, res.Reps)
	}
	for _, f := range camp.Failures {
		if len(res.Failures) >= 8 {
			break
		}
		repro, jerr := json.Marshal(f.Case)
		if jerr != nil {
			return nil, jerr
		}
		res.Failures = append(res.Failures, fmt.Sprintf("%s repro=%s", &f, repro))
	}
	return res, nil
}

// runMC explores one index range of a system's bounded schedule
// universe with the exhaustive model checker. The job is the fleet's
// sharding unit: disjoint [Lo, Hi) ranges over the same universe are
// shards of one exhaustive run, and their exact counts (Scanned,
// SymSkipped, Violations) merge by summation into the single-process
// totals. Success means the range verified clean; each violating bug
// class contributes one minimized reproducer to Failures.
func runMC(ctx context.Context, spec JobSpec) (*JobResult, error) {
	cfg := mc.Config{
		System: spec.System, N: spec.N, Alpha: spec.Alpha, MaxF: *spec.F,
		Horizon: spec.Horizon, Seed: spec.Seed, POne: spec.POne,
	}
	if spec.Policies != "" {
		for _, p := range strings.Split(spec.Policies, ",") {
			pol, err := fault.ParsePolicy(strings.TrimSpace(p))
			if err != nil {
				return nil, err
			}
			cfg.Policies = append(cfg.Policies, pol)
		}
	}
	hi := spec.Hi
	if hi == 0 {
		hi = -1 // whole universe
	}
	rep, err := mc.ExploreRange(ctx, cfg, spec.Lo, hi, nil)
	if err != nil {
		return nil, err
	}
	res := &JobResult{Reps: 1, MC: rep}
	if rep.Clean() {
		res.Success = 1
	}
	res.SuccessRate = float64(res.Success)
	res.CILow, res.CIHigh = stats.WilsonInterval(res.Success, res.Reps)
	for _, f := range rep.Failures {
		if len(res.Failures) >= 8 {
			break
		}
		repro, jerr := json.Marshal(f.Case)
		if jerr != nil {
			return nil, jerr
		}
		res.Failures = append(res.Failures, fmt.Sprintf("%s repro=%s", &f, repro))
	}
	return res, nil
}

// runExperiment replays a registered experiment through the shared
// registry and returns its rendered report.
func runExperiment(spec JobSpec) (*JobResult, error) {
	r, ok := experiment.Find(spec.Experiment)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", spec.Experiment)
	}
	rep, err := r.Run(experiment.Config{Quick: spec.Quick, SeedBase: spec.Seed})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		return nil, err
	}
	return &JobResult{Reps: 1, Success: 1, SuccessRate: 1, Report: b.String()}, nil
}
