package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// blockingExec returns an executor that parks every job until release is
// closed, so tests control queue occupancy deterministically.
func blockingExec(release <-chan struct{}) func(context.Context, JobSpec) (*JobResult, error) {
	return func(ctx context.Context, spec JobSpec) (*JobResult, error) {
		select {
		case <-release:
			return &JobResult{Reps: spec.Reps, Success: spec.Reps, SuccessRate: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestBackpressureAndDrain fills a 1-worker, 2-slot service beyond
// capacity, asserts explicit 429 backpressure with Retry-After, then
// releases the workers and verifies Close drains every accepted job.
func TestBackpressureAndDrain(t *testing.T) {
	release := make(chan struct{})
	svc := New(Config{Workers: 1, QueueSize: 2, exec: blockingExec(release)})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Worker takes one job; two more fill the queue. Seeds differ so no
	// submission is served from the cache.
	var ids []string
	accepted := 0
	for seed := uint64(0); seed < 8; seed++ {
		spec := JobSpec{Protocol: "election", N: 64, Alpha: 0.75, Seed: seed}
		body, _ := json.Marshal(spec)
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
			ids = append(ids, st.ID)
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
		if seed == 0 {
			// Let the worker pick up the first job so queue occupancy is
			// deterministic: 1 running + 2 queued accepted, rest rejected.
			waitFor(t, func() bool { return svc.metrics.running.Load() == 1 })
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted %d jobs, want 3 (1 running + 2 queued)", accepted)
	}
	mtext := metricsText(t, srv.URL)
	if !strings.Contains(mtext, "simd_jobs_rejected_total 5") {
		t.Errorf("rejection counter wrong:\n%s", mtext)
	}

	// Draining: new work refused, old work completes.
	close(release)
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(JobSpec{Protocol: "election", N: 64, Alpha: 0.75, Seed: 99}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	for _, id := range ids {
		st, ok := svc.Job(id)
		if !ok || st.State != StateDone {
			t.Fatalf("job %s not drained: %+v", id, st)
		}
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: %d", resp.StatusCode)
	}
}

// TestCloseLeavesNoGoroutines asserts the worker pool exits on drain: the
// goroutine count returns to its pre-service level.
func TestCloseLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	svc := New(Config{Workers: 4, QueueSize: 8})
	for seed := uint64(0); seed < 6; seed++ {
		if _, err := svc.Submit(JobSpec{Protocol: "election", N: 64, Alpha: 0.75, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before })
}

func TestPanicIsolation(t *testing.T) {
	boom := func(ctx context.Context, spec JobSpec) (*JobResult, error) {
		if spec.Seed == 666 {
			panic("synthetic failure")
		}
		return &JobResult{Reps: 1, Success: 1, SuccessRate: 1}, nil
	}
	svc := New(Config{Workers: 1, QueueSize: 4, exec: boom})
	defer svc.Close(context.Background())

	bad, err := svc.Submit(JobSpec{Protocol: "election", N: 64, Alpha: 0.75, Seed: 666})
	if err != nil {
		t.Fatal(err)
	}
	good, err := svc.Submit(JobSpec{Protocol: "election", N: 64, Alpha: 0.75, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		st, _ := svc.Job(good.ID)
		return st.State == StateDone
	})
	st, _ := svc.Job(bad.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("panicked job: %+v", st)
	}
	if svc.metrics.failed.Load() != 1 || svc.metrics.completed.Load() != 1 {
		t.Fatalf("counters: failed=%d completed=%d",
			svc.metrics.failed.Load(), svc.metrics.completed.Load())
	}
}

func TestJobTimeout(t *testing.T) {
	hang := make(chan struct{}) // never closed: job hangs until ctx fires
	svc := New(Config{Workers: 1, QueueSize: 2, JobTimeout: 20 * time.Millisecond,
		exec: blockingExec(hang)})
	defer svc.Close(context.Background())

	st, err := svc.Submit(JobSpec{Protocol: "election", N: 64, Alpha: 0.75, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		got, _ := svc.Job(st.ID)
		return got.State == StateFailed
	})
	got, _ := svc.Job(st.ID)
	if !strings.Contains(got.Error, "timeout") {
		t.Fatalf("timeout error missing: %+v", got)
	}
	// The failed result must not poison the cache: resubmitting runs
	// again rather than hitting.
	st2, err := svc.Submit(JobSpec{Protocol: "election", N: 64, Alpha: 0.75, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st2.CacheHit {
		t.Fatal("failed job was cached")
	}
}

func TestStoreEvictionKeepsLiveJobs(t *testing.T) {
	release := make(chan struct{})
	svc := New(Config{Workers: 1, QueueSize: 64, CacheSize: 1, exec: blockingExec(release)})
	// Defers run LIFO: release the workers first, then drain.
	defer svc.Close(context.Background())
	defer close(release)

	// With CacheSize 1 the store keeps 2 records; queued jobs must
	// survive eviction anyway.
	var ids []string
	for seed := uint64(0); seed < 6; seed++ {
		st, err := svc.Submit(JobSpec{Protocol: "election", N: 64, Alpha: 0.75, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if _, ok := svc.Job(id); !ok {
			t.Fatalf("live job %s evicted from store", id)
		}
	}
}

// waitFor polls cond for up to 30 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
