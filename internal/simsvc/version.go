package simsvc

import "runtime/debug"

// Version identifies the build serving the API. It is read once from the
// embedded build info (VCS revision when the binary was built from a
// checkout, else the main module version) and reported by /healthz so a
// fleet coordinator can tell which build each worker runs. Digest
// comparability across workers is governed separately by
// netsim.DigestSchemaVersion, which /healthz also reports.
var Version = buildVersion()

func buildVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", ""
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "devel"
}
