package simsvc

import (
	"sync"
	"sync/atomic"
)

// JobEvent is one entry on a job's event stream, served over SSE by
// GET /v1/jobs/{id}/events. The lifecycle is
// queued → running → progress* → done, with "done" covering both
// terminal states (State distinguishes them). Cache hits skip straight
// to "done". The same publications feed /metrics, so the SSE stream
// and the gauges cannot disagree about what the daemon did.
type JobEvent struct {
	Type     string `json:"type"` // queued | running | progress | done
	Job      string `json:"job"`
	Tenant   string `json:"tenant,omitempty"`
	State    string `json:"state,omitempty"`    // done events: StateDone | StateFailed
	CacheHit bool   `json:"cacheHit,omitempty"` // done events
	Error    string `json:"error,omitempty"`    // failed done events
	// Rep/Reps report execution progress: Rep repetitions of Reps have
	// finished.
	Rep  int `json:"rep,omitempty"`
	Reps int `json:"reps,omitempty"`
	// Done events carry a small result summary inline; the full result
	// stays on GET /v1/jobs/{id}.
	Success     int     `json:"success,omitempty"`
	SuccessRate float64 `json:"successRate,omitempty"`
	ElapsedMS   int64   `json:"elapsedMs,omitempty"`
}

// Terminal reports whether the event ends its stream.
func (e JobEvent) Terminal() bool { return e.Type == "done" }

// eventHub fans job events out to SSE subscribers. Per job it keeps a
// compact replay history (lifecycle events plus only the most recent
// progress event) so a late subscriber reconstructs the state machine
// without unbounded buffering, then receives live events until the
// terminal one.
type eventHub struct {
	mu      sync.Mutex
	streams map[string]*jobStream

	published   atomic.Int64 // all events published
	subscribers atomic.Int64 // gauge: live SSE subscriptions
	lagDrops    atomic.Int64 // events dropped on slow subscribers
}

type jobStream struct {
	history  []JobEvent
	subs     map[chan JobEvent]bool
	terminal bool
}

// subscriberBuffer absorbs progress bursts; a subscriber that cannot
// drain it is evicted (channel closed) rather than allowed to block a
// worker — the poll API remains the lossless fallback.
const subscriberBuffer = 64

func newEventHub() *eventHub {
	return &eventHub{streams: make(map[string]*jobStream)}
}

func (h *eventHub) publish(ev JobEvent) {
	h.published.Add(1)
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.streams[ev.Job]
	if !ok {
		st = &jobStream{subs: make(map[chan JobEvent]bool)}
		h.streams[ev.Job] = st
	}
	if ev.Type == "progress" && len(st.history) > 0 && st.history[len(st.history)-1].Type == "progress" {
		st.history[len(st.history)-1] = ev // coalesce: history keeps only the latest progress
	} else {
		st.history = append(st.history, ev)
	}
	if ev.Terminal() {
		st.terminal = true
	}
	for ch := range st.subs {
		select {
		case ch <- ev:
		default:
			if ev.Type == "progress" {
				h.lagDrops.Add(1) // droppable: the next progress supersedes it
				continue
			}
			// A subscriber too slow for lifecycle events is cut off;
			// closing the channel tells its handler to hang up.
			delete(st.subs, ch)
			close(ch)
			h.lagDrops.Add(1)
		}
	}
	if st.terminal {
		for ch := range st.subs {
			close(ch)
		}
		st.subs = make(map[chan JobEvent]bool)
	}
}

// subscribe returns the job's replay history and, when the job is still
// live, a channel of subsequent events (closed after the terminal event
// or on eviction) plus a cancel function. For finished jobs the channel
// is nil: replay is the whole story.
func (h *eventHub) subscribe(jobID string) (history []JobEvent, ch chan JobEvent, cancel func(), ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, exists := h.streams[jobID]
	if !exists {
		return nil, nil, nil, false
	}
	history = append([]JobEvent(nil), st.history...)
	if st.terminal {
		return history, nil, func() {}, true
	}
	ch = make(chan JobEvent, subscriberBuffer)
	st.subs[ch] = true
	h.subscribers.Add(1)
	var once sync.Once
	cancel = func() {
		once.Do(func() {
			h.subscribers.Add(-1)
			h.mu.Lock()
			defer h.mu.Unlock()
			if cur, live := h.streams[jobID]; live {
				if cur.subs[ch] {
					delete(cur.subs, ch)
					close(ch)
				}
			}
		})
	}
	return history, ch, cancel, true
}

// drop forgets a job's stream (called when the job record is evicted);
// any live subscribers are closed out.
func (h *eventHub) drop(jobID string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st, ok := h.streams[jobID]; ok {
		for ch := range st.subs {
			close(ch)
		}
		delete(h.streams, jobID)
	}
}
