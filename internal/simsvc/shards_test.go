package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"sublinear/internal/netsim"
)

func closeService(t *testing.T, svc *Service) {
	t.Helper()
	if err := svc.Close(context.Background()); err != nil {
		t.Errorf("close: %v", err)
	}
}

// runSync executes a spec directly through the real executor.
func runSync(t *testing.T, spec JobSpec) *JobResult {
	t.Helper()
	n, err := spec.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runSpec(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func postShards(t *testing.T, srv *httptest.Server, batch ShardBatch) (*http.Response, []ShardSubmission) {
	t.Helper()
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/shards", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Shards []ShardSubmission `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode shards response: %v", err)
	}
	return resp, out.Shards
}

func TestShardsBatchSubmit(t *testing.T) {
	svc := New(Config{Workers: 2, QueueSize: 16})
	defer closeService(t, svc)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	batch := ShardBatch{Specs: []JobSpec{
		{Protocol: "election", N: 32, Alpha: 0.8, Seed: 1, Reps: 2, Raw: true},
		{Protocol: "election", N: 32, Alpha: 0.8, Seed: 2, Reps: 2, Raw: true},
		{Protocol: "bogus"},
	}}
	resp, shards := postShards(t, srv, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if len(shards) != 3 {
		t.Fatalf("got %d submissions, want 3", len(shards))
	}
	for i := 0; i < 2; i++ {
		if shards[i].Status == nil || shards[i].Error != "" {
			t.Fatalf("shard %d: %+v, want accepted", i, shards[i])
		}
	}
	if shards[2].Status != nil || shards[2].Error == "" || shards[2].Retryable {
		t.Fatalf("invalid spec: %+v, want non-retryable per-element error", shards[2])
	}
}

func TestShardsBackpressure429(t *testing.T) {
	// An executor that parks until released keeps the queue full.
	block := make(chan struct{})
	svc := New(Config{Workers: 1, QueueSize: 1, exec: blockingExec(block)})
	defer closeService(t, svc)
	defer close(block)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Fill the worker, wait until the job is off the queue, then fill
	// the queue slot. Batch admission is atomic, so both fills in one
	// batch would race the worker's pop — two batches make occupancy
	// deterministic.
	if resp, _ := postShards(t, srv, ShardBatch{Specs: []JobSpec{
		{Protocol: "election", N: 32, Alpha: 0.8, Seed: 10, Reps: 1},
	}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("fill status %d, want 200", resp.StatusCode)
	}
	waitFor(t, func() bool { return svc.metrics.running.Load() == 1 })
	if resp, _ := postShards(t, srv, ShardBatch{Specs: []JobSpec{
		{Protocol: "election", N: 32, Alpha: 0.8, Seed: 11, Reps: 1},
	}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("queue-fill status %d, want 200", resp.StatusCode)
	}

	// The next batch gets nothing in: whole-batch 429 with Retry-After.
	resp, shards := postShards(t, srv, ShardBatch{Specs: []JobSpec{
		{Protocol: "election", N: 32, Alpha: 0.8, Seed: 12, Reps: 1},
	}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if len(shards) != 1 || !shards[0].Retryable {
		t.Fatalf("rejection not marked retryable: %+v", shards)
	}
}

func TestShardsRejectsOversizeBatch(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer closeService(t, svc)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	big := ShardBatch{Specs: make([]JobSpec, maxShardBatch+1)}
	resp, err := http.Post(srv.URL+"/v1/shards", "application/json", bytes.NewReader(mustJSON(t, big)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/shards", "application/json", bytes.NewReader(mustJSON(t, ShardBatch{})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
}

func TestHealthzReportsVersionAndSchema(t *testing.T) {
	svc := New(Config{Workers: 3})
	defer closeService(t, svc)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status       string `json:"status"`
		Workers      int    `json:"workers"`
		Version      string `json:"version"`
		DigestSchema int    `json:"digestSchema"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 3 {
		t.Fatalf("healthz %+v", h)
	}
	if h.Version == "" {
		t.Fatal("healthz has no build version")
	}
	if h.DigestSchema != netsim.DigestSchemaVersion {
		t.Fatalf("digestSchema = %d, want %d", h.DigestSchema, netsim.DigestSchemaVersion)
	}
}

// TestRawSeriesMatchesSummary runs the same spec with and without Raw
// and checks the per-repetition series is present, sized, and consistent
// with the summary statistics.
func TestRawSeriesMatchesSummary(t *testing.T) {
	spec := JobSpec{Protocol: "election", N: 32, Alpha: 0.8, Seed: 5, Reps: 4}

	plain := runSync(t, spec)
	if plain.Raw != nil {
		t.Fatal("non-raw run carries a raw series")
	}

	spec.Raw = true
	raw := runSync(t, spec)
	if raw.Raw == nil {
		t.Fatal("raw run has no raw series")
	}
	rs := raw.Raw
	if len(rs.Messages) != 4 || len(rs.Bits) != 4 || len(rs.Rounds) != 4 ||
		len(rs.Success) != 4 || len(rs.Reasons) != 4 {
		t.Fatalf("raw series sizes %d/%d/%d/%d/%d, want 4 each",
			len(rs.Messages), len(rs.Bits), len(rs.Rounds), len(rs.Success), len(rs.Reasons))
	}
	success := 0
	var sum int64
	for i := range rs.Messages {
		sum += rs.Messages[i]
		if rs.Success[i] {
			success++
			if rs.Reasons[i] != "" {
				t.Fatalf("rep %d succeeded with reason %q", i, rs.Reasons[i])
			}
		}
	}
	if success != raw.Success {
		t.Fatalf("raw success count %d != summary %d", success, raw.Success)
	}
	if mean := float64(sum) / 4; mean != raw.Messages.Mean {
		t.Fatalf("raw mean %v != summary mean %v", mean, raw.Messages.Mean)
	}
	// Raw and non-raw runs of the same spec must agree on the summary.
	if raw.Messages != plain.Messages || raw.Success != plain.Success {
		t.Fatal("raw flag changed the summary statistics")
	}
	// ...and must cache under different keys.
	if k1, k2 := mustKey(t, spec), mustKey(t, JobSpec{Protocol: "election", N: 32, Alpha: 0.8, Seed: 5, Reps: 4}); k1 == k2 {
		t.Fatal("raw and non-raw specs share a cache key")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustKey(t *testing.T, s JobSpec) string {
	t.Helper()
	n, err := s.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	return n.Key()
}
