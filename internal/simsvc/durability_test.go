package simsvc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sublinear/internal/quota"
)

// TestJournalReplayResumesQueue abandons a journaled service with a
// backlog it never got to run — the unit-level stand-in for kill -9 —
// and verifies a successor on the same journal resumes the queue under
// the original job IDs and produces the same results an uninterrupted
// service would.
func TestJournalReplayResumesQueue(t *testing.T) {
	path := filepath.Join(t.TempDir(), "simd.jsonl")
	park := make(chan struct{}) // never closed: svc1 completes nothing
	svc1, err := Open(Config{Workers: 1, QueueSize: 16, JournalPath: path, exec: blockingExec(park)})
	if err != nil {
		t.Fatal(err)
	}
	specs := []JobSpec{
		{Protocol: "election", N: 32, Alpha: 0.8, Seed: 1, Reps: 2, Raw: true},
		{Protocol: "election", N: 32, Alpha: 0.8, Seed: 2, Reps: 2, Raw: true},
		{Protocol: "agreement", N: 32, Alpha: 0.8, Seed: 3, Reps: 2, Raw: true},
	}
	var ids []string
	for _, out := range svc1.SubmitAll(specs) {
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		ids = append(ids, out.Status.ID)
	}
	// svc1 is now abandoned mid-backlog: no Close, no drain, exactly
	// what SIGKILL leaves behind (the submit records are already
	// fsync'd — that is the acknowledgement contract).

	svc2, err := Open(Config{Workers: 2, QueueSize: 16, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer closeService(t, svc2)
	for _, id := range ids {
		id := id
		waitFor(t, func() bool {
			st, ok := svc2.Job(id)
			return ok && st.State == StateDone
		})
	}
	// The replayed results must be bit-identical to direct runs.
	for i, id := range ids {
		st, _ := svc2.Job(id)
		want := runSync(t, specs[i])
		got, _ := json.Marshal(st.Result)
		ref, _ := json.Marshal(want)
		if !bytes.Equal(got, ref) {
			t.Fatalf("job %s result diverged from direct run:\n%s\nvs\n%s", id, got, ref)
		}
	}
	// The ID sequence continues past the replayed jobs: no collisions.
	st, err := svc2.Submit(JobSpec{Protocol: "election", N: 16, Alpha: 0.8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if st.ID == id {
			t.Fatalf("fresh submission reused replayed ID %s", id)
		}
	}
}

// TestJournalWarmsCacheAcrossRestart proves completed work survives: a
// cleanly closed daemon's successor answers an identical submission
// from the journal-warmed cache without re-running it.
func TestJournalWarmsCacheAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "simd.jsonl")
	spec := JobSpec{Protocol: "election", N: 32, Alpha: 0.8, Seed: 7, Reps: 2}

	svc1, err := Open(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := svc1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		st, ok := svc1.Job(st1.ID)
		return ok && st.State == StateDone
	})
	closeService(t, svc1) // flushes the done record

	ran := 0
	svc2, err := Open(Config{Workers: 1, JournalPath: path,
		exec: func(ctx context.Context, s JobSpec) (*JobResult, error) {
			ran++
			return runSpec(ctx, s)
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeService(t, svc2)
	st2, err := svc2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("restarted daemon missed the journal-warmed cache: %+v", st2)
	}
	if ran != 0 {
		t.Fatalf("executor ran %d times; the cache should have answered", ran)
	}
	res1, _ := svc1.Job(st1.ID)
	a, _ := json.Marshal(res1.Result)
	b, _ := json.Marshal(st2.Result)
	if !bytes.Equal(a, b) {
		t.Fatalf("cached result changed across restart:\n%s\nvs\n%s", a, b)
	}
}

// TestJournalTornTailRepair appends a torn half-record — the signature
// of a kill mid-append — and verifies the log still opens, replays the
// good prefix, and compacts the damage away.
func TestJournalTornTailRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "simd.jsonl")
	spec := JobSpec{Protocol: "election", N: 16, Alpha: 0.8, Seed: 1}
	norm, err := spec.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	_ = enc.Encode(jobJournalHeader{Format: jobJournalFormat})
	_ = enc.Encode(jobRecord{Op: "submit", ID: "j00000004", Tenant: "default", Spec: &norm})
	buf.WriteString(`{"op":"submit","id":"j0000`) // torn: no newline, half a record
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	j, replay, err := openJobJournal(path, 16)
	if err != nil {
		t.Fatalf("torn journal did not open: %v", err)
	}
	defer j.close()
	if len(replay.Pending) != 1 || replay.Pending[0].ID != "j00000004" {
		t.Fatalf("replay = %+v, want the one good submit", replay.Pending)
	}
	if replay.MaxSeq != 4 {
		t.Fatalf("MaxSeq = %d, want 4", replay.MaxSeq)
	}
	// Compaction must have rewritten the file without the torn tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"j0000`+"\n")) || !bytes.HasSuffix(data, []byte("\n")) {
		t.Fatalf("compacted journal still torn:\n%s", data)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	lines := 0
	for sc.Scan() {
		lines++
	}
	if lines != 2 { // header + one submit
		t.Fatalf("compacted journal has %d lines, want 2:\n%s", lines, data)
	}
}

// TestTenantAdmissionOverHTTP exercises the per-tenant budget: one
// tenant's exhausted queue budget 429s with Retry-After while another
// tenant's submissions are still admitted, and /metrics attributes the
// outcomes per tenant.
func TestTenantAdmissionOverHTTP(t *testing.T) {
	park := make(chan struct{})
	svc := New(Config{
		Workers: 1, QueueSize: 64,
		Quota: quota.Config{
			TotalQueued: 64,
			Tenants:     map[string]quota.Limits{"small": {MaxQueued: 1}},
		},
		exec: blockingExec(park),
	})
	defer closeService(t, svc) // after the release below (LIFO): drain needs jobs to finish
	defer close(park)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	submit := func(tenant string, seed uint64) *http.Response {
		body, _ := json.Marshal(JobSpec{Tenant: tenant, Protocol: "election", N: 16, Alpha: 0.8, Seed: seed})
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Occupy the single worker so queue depths are deterministic.
	if resp := submit("small", 1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	waitFor(t, func() bool { return svc.metrics.running.Load() == 1 })
	// small's queue budget is 1: one queued job fits, the next is cut.
	if resp := submit("small", 2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	resp := submit("small", 3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("tenant 429 without Retry-After")
	}
	// Another tenant is unaffected by small's exhaustion.
	if resp := submit("big", 4); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant rejected: %d", resp.StatusCode)
	}
	mtext := metricsText(t, srv.URL)
	for _, want := range []string{
		`simd_tenant_jobs_rejected_total{tenant="small"} 1`,
		`simd_tenant_jobs_submitted_total{tenant="big"} 1`,
		`simd_tenant_queued{tenant="small"} 1`,
	} {
		if !strings.Contains(mtext, want) {
			t.Errorf("metrics missing %q:\n%s", want, mtext)
		}
	}
	if err := quotaErrIs(svc, "small"); err != nil {
		t.Error(err)
	}
}

// quotaErrIs double-checks the Go-level error taxonomy: a tenant-budget
// rejection still satisfies errors.Is(err, ErrQueueFull) — the contract
// the fleet client's retry path keys on.
func quotaErrIs(svc *Service, tenant string) error {
	_, err := svc.Submit(JobSpec{Tenant: tenant, Protocol: "election", N: 16, Alpha: 0.8, Seed: 99})
	if !errors.Is(err, ErrQueueFull) {
		return errors.New("tenant rejection does not wrap ErrQueueFull: " + err.Error())
	}
	return nil
}

// TestSSEEventStream subscribes to a job's event stream and verifies
// the lifecycle arrives in order with per-repetition progress, and that
// a late subscriber to a finished job gets the replayed history.
func TestSSEEventStream(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer closeService(t, svc)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	st, err := svc.Submit(JobSpec{Protocol: "election", N: 32, Alpha: 0.8, Seed: 5, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	types := readSSE(t, srv.URL, st.ID)
	if types[len(types)-1] != "done" {
		t.Fatalf("stream did not end with done: %v", types)
	}
	idx := func(kind string) int {
		for i, tp := range types {
			if tp == kind {
				return i
			}
		}
		return -1
	}
	if !(idx("queued") >= 0 && idx("queued") < idx("running") && idx("running") < idx("done")) {
		t.Fatalf("lifecycle out of order: %v", types)
	}

	// Late subscriber: the job is finished; replay alone must tell the
	// whole story and the stream must close by itself.
	late := readSSE(t, srv.URL, st.ID)
	if late[len(late)-1] != "done" || idx("queued") < 0 {
		t.Fatalf("late replay incomplete: %v", late)
	}

	// Unknown job: 404, not an empty stream.
	resp, err := http.Get(srv.URL + "/v1/jobs/nosuch/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events: %d, want 404", resp.StatusCode)
	}
}

// readSSE consumes a job's event stream until it closes and returns the
// event types in arrival order, verifying each data payload decodes.
func readSSE(t *testing.T, base, jobID string) []string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var types []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if after, ok := strings.CutPrefix(line, "data: "); ok {
			var ev JobEvent
			if err := json.Unmarshal([]byte(after), &ev); err != nil {
				t.Fatalf("bad event payload %q: %v", after, err)
			}
			types = append(types, ev.Type)
		}
	}
	if len(types) == 0 {
		t.Fatal("no events received")
	}
	return types
}

// TestProgressEventsCoalesce asserts the replay history keeps a single
// progress entry no matter how many repetitions ran, so late
// subscribers are not flooded.
func TestProgressEventsCoalesce(t *testing.T) {
	hub := newEventHub()
	hub.publish(JobEvent{Type: "queued", Job: "j1"})
	hub.publish(JobEvent{Type: "running", Job: "j1"})
	for rep := 0; rep < 100; rep++ {
		hub.publish(JobEvent{Type: "progress", Job: "j1", Rep: rep, Reps: 100})
	}
	hub.publish(JobEvent{Type: "done", Job: "j1", State: StateDone})
	history, ch, _, ok := hub.subscribe("j1")
	if !ok || ch != nil {
		t.Fatalf("terminal stream should replay-only (ok=%v ch=%v)", ok, ch)
	}
	var types []string
	for _, ev := range history {
		types = append(types, ev.Type)
	}
	want := []string{"queued", "running", "progress", "done"}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("history %v, want %v", types, want)
	}
	if history[2].Rep != 99 {
		t.Fatalf("coalesced progress kept rep %d, want the latest (99)", history[2].Rep)
	}
}
