package simsvc

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs      submit a JobSpec; 200 done (cache hit), 202
//	                   accepted, 400 invalid, 429 queue full (with
//	                   Retry-After), 503 draining
//	GET  /v1/jobs      list retained jobs
//	GET  /v1/jobs/{id} poll one job
//	GET  /metrics      Prometheus text metrics
//	GET  /healthz      liveness and queue depth
//	GET  /debug/pprof/ runtime profiles
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Jobs())
	case http.MethodPost:
		s.handleSubmit(w, r)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.invalid.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	case st.State == StateDone:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	st, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.cache.len())
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":  status,
		"queued":  s.QueueDepth(),
		"workers": s.cfg.Workers,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
