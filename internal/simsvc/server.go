package simsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"sublinear/internal/netsim"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs      submit a JobSpec; 200 done (cache hit), 202
//	                   accepted, 400 invalid, 429 queue full (with
//	                   Retry-After), 503 draining
//	POST /v1/shards    submit a batch of shard JobSpecs in one request;
//	                   per-shard outcomes, 429 when every shard was
//	                   rejected for backpressure
//	GET  /v1/jobs      list retained jobs
//	GET  /v1/jobs/{id} poll one job
//	GET  /v1/jobs/{id}/events
//	                   live job progress over Server-Sent Events:
//	                   queued → running → progress (per repetition) →
//	                   done, with the earlier events replayed to late
//	                   subscribers; finished jobs replay their history
//	                   and close
//	GET  /v1/traces/{id} fetch a recorded execution trace by content
//	                   address (the TraceID of a job result whose spec
//	                   set "trace": true); binary internal/trace format
//	GET  /metrics      Prometheus text metrics
//	GET  /healthz      liveness, queue depth, capacity, build version,
//	                   and digest schema
//	GET  /debug/pprof/ runtime profiles
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/shards", s.handleShards)
	mux.HandleFunc("/v1/traces/", s.handleTrace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if s.cfg.Mesh != nil {
		// The daemon's gossip endpoints live on the same listener as the
		// job API, so one address is both the work target and the mesh
		// bootstrap contact.
		s.cfg.Mesh.Handler(mux)
	}
	return mux
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Jobs())
	case http.MethodPost:
		s.handleSubmit(w, r)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.invalid.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	case st.State == StateDone:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// ShardBatch is the request body of POST /v1/shards: the shards of one
// distributed run, submitted in a single request. Each spec is an
// ordinary JobSpec (typically with Raw set so the coordinator can merge
// shards exactly); each is queued, cached, and retained like a job
// submitted via /v1/jobs.
type ShardBatch struct {
	Specs []JobSpec `json:"specs"`
}

// ShardSubmission is one element of the /v1/shards response, parallel to
// the request's Specs. Exactly one of Status and Error is set; Retryable
// marks backpressure rejections the caller should resubmit after a
// delay, as opposed to invalid specs, which never succeed.
type ShardSubmission struct {
	Status    *JobStatus `json:"status,omitempty"`
	Error     string     `json:"error,omitempty"`
	Retryable bool       `json:"retryable,omitempty"`
}

// maxShardBatch bounds one /v1/shards request, so a single call cannot
// flood the queue past what the per-job backpressure can signal.
const maxShardBatch = 256

func (s *Service) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var batch ShardBatch
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		s.metrics.invalid.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad shard batch: " + err.Error()})
		return
	}
	if len(batch.Specs) == 0 || len(batch.Specs) > maxShardBatch {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": "shard batch needs 1..256 specs"})
		return
	}
	// One admission pass, one journal fsync for the whole batch.
	results := s.SubmitAll(batch.Specs)
	out := make([]ShardSubmission, len(batch.Specs))
	accepted, busy := 0, 0
	for i, res := range results {
		st, err := res.Status, res.Err
		switch {
		case errors.Is(err, ErrQueueFull):
			out[i] = ShardSubmission{Error: err.Error(), Retryable: true}
			busy++
		case errors.Is(err, ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
			return
		case err != nil:
			out[i] = ShardSubmission{Error: err.Error()}
		default:
			st := st
			out[i] = ShardSubmission{Status: &st}
			accepted++
		}
	}
	code := http.StatusOK
	if busy > 0 && accepted == 0 {
		// Nothing got in: the whole batch is backpressure, surface it as
		// such so clients reuse their 429 path.
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	}
	writeJSON(w, code, map[string]any{"shards": out})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if events, ok := strings.CutSuffix(id, "/events"); ok {
		s.handleEvents(w, r, events)
		return
	}
	st, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// sseHeartbeat keeps idle event streams alive through proxies; a
// comment line is protocol noise SSE clients ignore.
const sseHeartbeat = 15 * time.Second

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request, id string) {
	history, live, cancel, ok := s.events.subscribe(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job " + id})
		return
	}
	if cancel != nil {
		defer cancel()
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev JobEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		flusher.Flush()
		return !ev.Terminal()
	}
	for _, ev := range history {
		if !writeEvent(ev) {
			return
		}
	}
	if live == nil {
		return // finished job: the replay was the whole story
	}
	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-live:
			if !open {
				// Evicted, cut off for lagging, or the stream's job was
				// dropped; the poll API remains authoritative.
				return
			}
			if !writeEvent(ev) {
				return
			}
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	data, ok := s.traces.get(id)
	if !ok {
		// Unknown or evicted — the store is an LRU, so a trace's
		// lifetime is bounded by churn; resubmitting the traced job
		// (a cache-keyed exact replay) regenerates it.
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown trace " + id})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.cache.len(), s.traces, s.queue.Depths(), s.events)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	body := map[string]any{
		"status":  status,
		"queued":  s.QueueDepth(),
		"workers": s.cfg.Workers,
		// Version and digestSchema let a fleet coordinator check worker
		// compatibility before dispatching: execution digests are only
		// comparable between workers running the same digest schema.
		"version":      Version,
		"digestSchema": netsim.DigestSchemaVersion,
		"durable":      s.journal != nil,
	}
	if depths := s.queue.Depths(); len(depths) > 0 {
		body["tenants"] = depths
	}
	if s.cfg.Mesh != nil {
		self := s.cfg.Mesh.Self()
		body["mesh"] = map[string]any{
			"nodeId":      self.ID,
			"addr":        self.Addr,
			"incarnation": self.Incarnation,
			"live":        len(s.cfg.Mesh.Live()),
		}
	}
	writeJSON(w, code, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
