package simsvc

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU over finished job results, keyed by the
// content address of the normalized spec (JobSpec.Key). Results are
// immutable once stored, so a hit can be shared by reference.
type resultCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *JobResult
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (*JobResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res *JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key, res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
