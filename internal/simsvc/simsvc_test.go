package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sublinear/internal/experiment"
	"sublinear/internal/mc"
)

func TestNormalizeResolvesDefaultsAndKeys(t *testing.T) {
	a, err := JobSpec{Protocol: "Election", N: 128, Seed: 7}.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if a.Alpha != 0.5 || a.Policy != "half" || a.Engine != "seq" || a.Reps != 1 {
		t.Fatalf("defaults not resolved: %+v", a)
	}
	if a.F == nil || *a.F != 64 {
		t.Fatalf("f not derived: %v", a.F)
	}
	// A fully spelled-out version of the same job must share the key.
	f := 64
	b, err := JobSpec{Protocol: "election", N: 128, Alpha: 0.5, F: &f, POne: 0.5,
		Policy: "half", Engine: "seq", Seed: 7, Reps: 1}.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("equivalent specs got different keys:\n%+v\n%+v", a, b)
	}
	// A different seed must not share the key.
	c := a
	c.Seed = 8
	if a.Key() == c.Key() {
		t.Fatal("different seeds share a cache key")
	}
}

func TestNormalizeRejectsBadSpecs(t *testing.T) {
	bad := []JobSpec{
		{Protocol: "quantum", N: 64},
		{Protocol: "election", N: 1},
		{Protocol: "election", N: DefaultLimits.MaxN + 1},
		{Protocol: "election", N: 64, Reps: DefaultLimits.MaxReps + 1},
		{Protocol: "election", N: 64, Policy: "sometimes"},
		{Protocol: "election", N: 64, Engine: "tcp"},
		{Protocol: "election", N: 64, Alpha: 1.5},
		{Protocol: "experiment"},
	}
	for _, spec := range bad {
		if _, err := spec.Normalize(DefaultLimits); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

func TestRunSpecCoversEveryProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every protocol")
	}
	for _, proto := range []string{"election", "agreement", "minagree",
		"gk", "floodset", "gossip", "rotating", "allpairs", "kutten", "amp"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			spec := JobSpec{Protocol: proto, N: 64, Alpha: 0.75, Seed: 3, Reps: 2}
			norm, err := spec.Normalize(DefaultLimits)
			if err != nil {
				t.Fatal(err)
			}
			res, err := runSpec(context.Background(), norm)
			if err != nil {
				t.Fatal(err)
			}
			if res.Reps != 2 || res.Messages.Mean <= 0 || res.Rounds.Mean <= 0 {
				t.Fatalf("degenerate result: %+v", res)
			}
		})
	}
}

// TestDSTJob runs the deterministic-simulation campaign job kind: the
// campaign over the real protocols must come back clean, irrelevant
// fields must not split the cache key, and the case budget rides on
// Reps.
func TestDSTJob(t *testing.T) {
	spec := JobSpec{Protocol: "dst", Seed: 11, Reps: 3}
	norm, err := spec.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Reps != 3 {
		t.Fatalf("reps = %d, want 3", norm.Reps)
	}
	// Same job with noise in campaign-irrelevant fields: one cache key.
	noisy, err := JobSpec{Protocol: "dst", Seed: 11, Reps: 3,
		N: 512, Alpha: 0.9, Policy: "all", Engine: "actors", Hunter: true}.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Key() != norm.Key() {
		t.Fatal("irrelevant fields split the dst cache key")
	}
	if _, err := (JobSpec{Protocol: "dst", Reps: -1}).Normalize(DefaultLimits); err == nil {
		t.Fatal("negative case budget accepted")
	}
	res, err := runSpec(context.Background(), norm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 3 || res.Success != 3 || len(res.Failures) != 0 {
		t.Fatalf("campaign over real protocols not clean: %+v", res)
	}
	// Defaulted case budget.
	def, err := (JobSpec{Protocol: "dst", Seed: 1}).Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if def.Reps != 25 {
		t.Fatalf("default case budget = %d, want 25", def.Reps)
	}
}

// TestMCJob runs the exhaustive model-checking job kind: a canary job
// must come back violating with a repro in Failures, a real system must
// verify clean, the same universe split into two [Lo, Hi) shards must
// sum its exact counts back to the unsharded run, and irrelevant fields
// must not split the cache key.
func TestMCJob(t *testing.T) {
	spec := JobSpec{Protocol: "mc", System: "canary", N: 4, Seed: 11}
	norm, err := spec.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if norm.F == nil || *norm.F != -1 || norm.Reps != 1 {
		t.Fatalf("mc normalization: %+v", norm)
	}
	noisy, err := JobSpec{Protocol: "mc", System: "canary", N: 4, Seed: 11,
		Policy: "all", Engine: "actors", Hunter: true, Raw: true}.Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Key() != norm.Key() {
		t.Fatal("irrelevant fields split the mc cache key")
	}
	for _, bad := range []JobSpec{
		{Protocol: "mc", N: 4},                                             // no system
		{Protocol: "mc", System: "canary", N: 1},                           // n too small
		{Protocol: "mc", System: "canary", N: 4, Policies: "all,sideways"}, // bad palette
		{Protocol: "mc", System: "canary", N: 4, Lo: 5, Hi: 3},             // empty range
	} {
		if _, err := bad.Normalize(DefaultLimits); err == nil {
			t.Fatalf("spec %+v accepted", bad)
		}
	}
	res, err := runSpec(context.Background(), norm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success != 0 || res.MC == nil || res.MC.Stats.Violations == 0 {
		t.Fatalf("canary universe verified clean: %+v", res)
	}
	if len(res.Failures) == 0 || !strings.Contains(res.Failures[0], "repro=") {
		t.Fatalf("no replayable repro in failures: %v", res.Failures)
	}
	// Two shards of the same universe sum to the unsharded exact counts.
	mid := res.MC.Stats.Universe / 2
	var merged mc.Stats
	for _, r := range [][2]int64{{0, mid}, {mid, res.MC.Stats.Universe}} {
		shard := norm
		shard.Lo, shard.Hi = r[0], r[1]
		sres, err := runSpec(context.Background(), shard)
		if err != nil {
			t.Fatal(err)
		}
		merged.Add(sres.MC.Stats)
	}
	if merged.Scanned != res.MC.Stats.Scanned ||
		merged.SymSkipped != res.MC.Stats.SymSkipped ||
		merged.Violations != res.MC.Stats.Violations {
		t.Fatalf("sharded mc counts diverge: %+v vs %+v", merged, res.MC.Stats)
	}
	// A real protocol's bounded universe verifies clean.
	clean, err := (JobSpec{Protocol: "mc", System: "echo", N: 3, Seed: 7}).Normalize(DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := runSpec(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Success != 1 || len(cres.Failures) != 0 {
		t.Fatalf("echo universe not clean: %+v", cres)
	}
}

// submit POSTs a spec and returns the decoded status and response.
func submit(t *testing.T, url string, spec JobSpec) (JobStatus, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &st)
	return st, resp
}

// poll fetches a job until it leaves the queued/running states.
func poll(t *testing.T, url, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobStatus{}
}

func metricsText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

// TestEndToEndHTTP is the acceptance flow: submit, poll to completion,
// resubmit the identical job, and verify it is served from the cache —
// observed both on the response and on the /metrics counters.
func TestEndToEndHTTP(t *testing.T) {
	svc := New(Config{Workers: 2, QueueSize: 8})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer svc.Close(context.Background())

	spec := JobSpec{Protocol: "election", N: 128, Alpha: 0.75, Seed: 42, Reps: 3}
	st, resp := submit(t, srv.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("submit returned %+v", st)
	}

	final := poll(t, srv.URL, st.ID)
	if final.State != StateDone || final.CacheHit {
		t.Fatalf("first run: %+v", final)
	}
	res := final.Result
	if res == nil || res.Reps != 3 || res.Messages.Mean <= 0 || res.SuccessRate <= 0 {
		t.Fatalf("first result: %+v", res)
	}
	if res.CIHigh <= res.CILow {
		t.Fatalf("Wilson interval degenerate: %+v", res)
	}

	// Identical resubmission: answered from the cache, immediately done,
	// byte-identical result.
	st2, resp2 := submit(t, srv.URL, spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached submit status = %d", resp2.StatusCode)
	}
	if !st2.CacheHit || st2.State != StateDone || st2.Result == nil {
		t.Fatalf("cached submit: %+v", st2)
	}
	if st2.Result.Messages.Mean != res.Messages.Mean || st2.Result.Success != res.Success {
		t.Fatalf("cached result diverges: %+v vs %+v", st2.Result, res)
	}

	mtext := metricsText(t, srv.URL)
	for _, want := range []string{
		"simd_cache_hits_total 1",
		"simd_cache_misses_total 1",
		"simd_jobs_completed_total 2",
		"simd_jobs_submitted_total 2",
		`simd_job_messages_count{protocol="election"} 1`,
	} {
		if !strings.Contains(mtext, want) {
			t.Errorf("/metrics missing %q\n%s", want, mtext)
		}
	}

	// A different seed is a different job: it must miss.
	spec.Seed = 43
	st3, _ := submit(t, srv.URL, spec)
	if st3.CacheHit {
		t.Fatal("different seed served from cache")
	}
	poll(t, srv.URL, st3.ID)

	// Health is OK while serving.
	resp4, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp4.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp4)
	}
	resp4.Body.Close()
}

// TestExperimentJobsShareRegistry registers a synthetic experiment and
// runs it through the service, proving simd dispatches through the same
// table as cmd/experiments.
func TestExperimentJobsShareRegistry(t *testing.T) {
	experiment.Register(experiment.Runner{
		ID: "E99", Title: "synthetic registry probe",
		Run: func(cfg experiment.Config) (*experiment.Report, error) {
			rep := &experiment.Report{ID: "E99", Title: "synthetic registry probe"}
			tbl := experiment.NewTable("probe", "quick", "seedbase")
			tbl.AddRow(cfg.Quick, cfg.SeedBase)
			rep.Tables = append(rep.Tables, tbl)
			return rep, nil
		},
	})
	svc := New(Config{Workers: 1, QueueSize: 4})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer svc.Close(context.Background())

	st, resp := submit(t, srv.URL, JobSpec{Protocol: "experiment", Experiment: "E99", Quick: true, Seed: 5})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	final := poll(t, srv.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("experiment job failed: %+v", final)
	}
	if !strings.Contains(final.Result.Report, "E99") || !strings.Contains(final.Result.Report, "true") {
		t.Fatalf("report missing content:\n%s", final.Result.Report)
	}

	// Unknown experiment IDs fail the job, not the daemon.
	st2, _ := submit(t, srv.URL, JobSpec{Protocol: "experiment", Experiment: "E0", Seed: 5})
	if final2 := poll(t, srv.URL, st2.ID); final2.State != StateFailed {
		t.Fatalf("unknown experiment not failed: %+v", final2)
	}
}

func TestHTTPValidation(t *testing.T) {
	svc := New(Config{Workers: 1, QueueSize: 2})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer svc.Close(context.Background())

	// Malformed JSON and unknown fields are 400.
	for _, body := range []string{"{not json", `{"protocol":"election","n":64,"bogus":1}`} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d", body, resp.StatusCode)
		}
	}
	// Unknown job IDs are 404.
	resp, err := http.Get(srv.URL + "/v1/jobs/j99999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
	// pprof is mounted.
	resp, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof: status %d", resp.StatusCode)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	r := &JobResult{Reps: 1}
	c.put("a", r)
	c.put("b", r)
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", r)
	if _, ok := c.get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being MRU")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

func ExampleJobSpec_Key() {
	a, _ := JobSpec{Protocol: "election", N: 1024, Seed: 1}.Normalize(DefaultLimits)
	b, _ := JobSpec{Protocol: "ELECTION", N: 1024, Seed: 1, Reps: 1}.Normalize(DefaultLimits)
	fmt.Println(a.Key() == b.Key())
	// Output: true
}
