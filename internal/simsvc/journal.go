package simsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// jobJournal is the daemon's fsync'd append-only durability log, the
// server-side sibling of the coordinator journal in
// internal/fleet/journal.go and built on the same JSONL discipline:
// a header line, one record per state change, torn-tail repair by
// truncation, and idempotent last-wins replay. Two record kinds exist —
// "submit" (a job was admitted: ID, tenant, normalized spec) and "done"
// (a job finished: terminal state, cache key, result). A killed daemon
// restarts by replaying the log: jobs with a submit but no done record
// re-enter the queue under their original IDs (in-flight work is
// indistinguishable from queued work after a crash, and deterministic
// engines make the re-run an exact replay), and successful done records
// re-warm the result cache. The file is compacted on every open down to
// the records that still matter.
//
// Write paths have different durability needs and pay accordingly:
// submit records are fsync'd before the submission is acknowledged
// (one fsync per HTTP request — batched for /v1/shards, so a 256-spec
// batch costs one sync), while done records are group-committed by a
// background flusher that coalesces bursts into one write+sync. A crash
// in the flusher window loses only done records, which replay as
// pending and re-run to the same bytes.
type jobJournal struct {
	path string

	mu sync.Mutex
	f  *os.File

	// Group commit: finished-job records accumulate in buf until the
	// flusher drains them in one write+sync.
	buf     []byte
	flushCh chan struct{}
	stopCh  chan struct{}
	doneCh  chan struct{}
	err     error // first write/sync error; the journal is dead after it
}

const jobJournalFormat = "simd-journal-v1"

type jobJournalHeader struct {
	Format string `json:"format"`
}

// jobRecord is one journal line after the header.
type jobRecord struct {
	// Op is "submit" or "done".
	Op     string  `json:"op"`
	ID     string  `json:"id"`
	Tenant string  `json:"tenant,omitempty"`
	Spec   *JobSpec `json:"spec,omitempty"` // submit and done records
	// Done records: the terminal state, the cache key, and (on success)
	// the result, so replay re-warms the cache without re-running — and
	// the spec rides along so the finished job itself is resurrected
	// under its original ID for clients still polling it.
	Key    string     `json:"key,omitempty"`
	State  string     `json:"state,omitempty"`
	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// journalReplay is what openJobJournal recovered from the log.
type journalReplay struct {
	// Pending are admitted jobs with no terminal record, in submission
	// order — the restart queue.
	Pending []jobRecord
	// Done are successful terminal records in log order (last-wins per
	// key when the cache replays them).
	Done []jobRecord
	// MaxSeq is the highest numeric job ID seen, so the restarted
	// daemon's ID sequence cannot collide with journaled IDs.
	MaxSeq int64
}

// openJobJournal opens (or creates) the journal at path, replays it,
// compacts it, and leaves it open for appending. keepDone bounds the
// successful records retained by compaction (the cache-warm set);
// failed jobs are dropped at compaction — their submissions were
// acknowledged and answered, and nothing would replay them.
func openJobJournal(path string, keepDone int) (*jobJournal, *journalReplay, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	replay := &journalReplay{}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	if err == nil {
		if replay, err = replayJobJournal(path, data); err != nil {
			return nil, nil, err
		}
	}
	if len(replay.Done) > keepDone {
		replay.Done = replay.Done[len(replay.Done)-keepDone:]
	}

	// Compact: rewrite the surviving state to a fresh file and swap it
	// in atomically, so the log's size is bounded by the live set plus
	// the cache-warm window, not by daemon lifetime.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, err
	}
	var out bytes.Buffer
	writeLine := func(v any) {
		b, _ := json.Marshal(v)
		out.Write(b)
		out.WriteByte('\n')
	}
	writeLine(jobJournalHeader{Format: jobJournalFormat})
	for i := range replay.Done {
		writeLine(&replay.Done[i])
	}
	for i := range replay.Pending {
		writeLine(&replay.Pending[i])
	}
	if _, err := f.Write(out.Bytes()); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Close(); err != nil {
		return nil, nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, err
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j := &jobJournal{
		path:    path,
		f:       af,
		flushCh: make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	go j.flusher()
	return j, replay, nil
}

// replayJobJournal decodes the log, stopping at the first torn or
// undecodable line (the tail a kill mid-append leaves behind; the
// compaction rewrite discards it).
func replayJobJournal(path string, data []byte) (*journalReplay, error) {
	replay := &journalReplay{}
	submits := map[string]jobRecord{}
	var order []string
	terminal := map[string]bool{}
	first := true
	for rest := data; len(rest) > 0; {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail
		}
		line := rest[:nl]
		rest = rest[nl+1:]
		if first {
			var h jobJournalHeader
			if err := json.Unmarshal(line, &h); err != nil || h.Format != jobJournalFormat {
				return nil, fmt.Errorf("simsvc: %s is not a simd job journal", path)
			}
			first = false
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail mid-file after a partial flush
		}
		switch rec.Op {
		case "submit":
			if rec.Spec == nil || rec.ID == "" {
				continue
			}
			if _, seen := submits[rec.ID]; !seen {
				order = append(order, rec.ID)
			}
			submits[rec.ID] = rec // last wins
			var seq int64
			if _, err := fmt.Sscanf(rec.ID, "j%d", &seq); err == nil && seq > replay.MaxSeq {
				replay.MaxSeq = seq
			}
		case "done":
			terminal[rec.ID] = true
			if rec.State == StateDone && rec.Result != nil && rec.Key != "" {
				replay.Done = append(replay.Done, rec)
			}
		}
	}
	if first && len(data) > 0 {
		return nil, fmt.Errorf("simsvc: %s is truncated before its header", path)
	}
	for _, id := range order {
		if !terminal[id] {
			replay.Pending = append(replay.Pending, submits[id])
		}
	}
	return replay, nil
}

// appendSubmits durably records a batch of admissions: one write, one
// fsync, however many records — the /v1/shards batch pays for a single
// sync. It must return before the submissions are acknowledged.
func (j *jobJournal) appendSubmits(recs []jobRecord) error {
	var out bytes.Buffer
	for i := range recs {
		b, err := json.Marshal(&recs[i])
		if err != nil {
			return err
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if _, err := j.f.Write(out.Bytes()); err != nil {
		j.err = err
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.err = err
		return err
	}
	return nil
}

// recordDone enqueues a terminal record for the group-commit flusher.
// Loss window: a crash before the flush replays the job as pending and
// re-runs it deterministically — durability is traded for one coalesced
// fsync per burst instead of one per completion.
func (j *jobJournal) recordDone(rec jobRecord) {
	b, err := json.Marshal(&rec)
	if err != nil {
		return
	}
	j.mu.Lock()
	j.buf = append(j.buf, b...)
	j.buf = append(j.buf, '\n')
	j.mu.Unlock()
	select {
	case j.flushCh <- struct{}{}:
	default: // a flush is already scheduled; it will pick this record up
	}
}

// flusher drains buffered done records: every wakeup swaps the buffer
// out under the lock and commits it with a single write+sync, so N
// completions racing in cost one sync, not N.
func (j *jobJournal) flusher() {
	defer close(j.doneCh)
	for {
		select {
		case <-j.flushCh:
			j.flush()
		case <-j.stopCh:
			j.flush()
			return
		}
	}
}

func (j *jobJournal) flush() {
	j.mu.Lock()
	buf := j.buf
	j.buf = nil
	if len(buf) == 0 || j.err != nil {
		j.mu.Unlock()
		return
	}
	if _, err := j.f.Write(buf); err != nil {
		j.err = err
		j.mu.Unlock()
		return
	}
	if err := j.f.Sync(); err != nil {
		j.err = err
	}
	j.mu.Unlock()
}

// close flushes outstanding done records and closes the file.
func (j *jobJournal) close() error {
	close(j.stopCh)
	<-j.doneCh
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.f.Close()
	if j.err != nil {
		return j.err
	}
	return err
}
