// Package rng provides deterministic, splittable pseudo-random number
// generation for the simulator.
//
// Every node in a simulated network needs an independent stream of private
// coins (the model in the paper gives each node access to an arbitrary
// number of private random bits), yet a whole run must be reproducible from
// a single seed. Source is a xoshiro256** generator; streams are derived
// from a parent seed with SplitMix64, the standard seeding scheme for the
// xoshiro family, which guarantees well-distributed, decorrelated states.
package rng

import "math"

// Source is a deterministic pseudo-random generator. It implements the
// subset of math/rand-style methods the protocols need. The zero value is
// not valid; construct with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via SplitMix64.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	src.s0, src.s1, src.s2, src.s3 = next(), next(), next(), next()
	return &src
}

// Split derives an independent child stream for the given index. Two
// children with different indices, or children of different parents, have
// decorrelated states. The parent stream is not advanced.
func (s *Source) Split(index uint64) *Source {
	// Mix the parent state with the index through SplitMix64. Using the
	// full 256-bit parent state avoids collisions between, e.g.,
	// New(1).Split(2) and New(2).Split(1).
	mix := s.s0
	mix = mix*0x9e3779b97f4a7c15 + index
	mix ^= s.s1 + 0x6a09e667f3bcc909
	mix = mix*0xbf58476d1ce4e5b9 + s.s2
	mix ^= s.s3
	return New(mix)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17

	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)

	return result
}

// Int64n returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation with rejection.
	un := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int64(hi)
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	return int(s.Int64n(int64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. Values of p outside [0, 1] are
// clamped.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// SampleDistinct returns k distinct uniform values from [0, n), excluding
// any value for which excluded returns true. It panics if fewer than k
// admissible values exist. excluded may be nil.
func (s *Source) SampleDistinct(k, n int, excluded func(int) bool) []int {
	admissible := n
	if excluded != nil {
		admissible = 0
		for i := 0; i < n; i++ {
			if !excluded(i) {
				admissible++
			}
		}
	}
	if k > admissible {
		panic("rng: SampleDistinct: not enough admissible values")
	}
	out := make([]int, 0, k)
	if k*4 >= admissible {
		// Dense regime: Fisher–Yates over the admissible values.
		vals := make([]int, 0, admissible)
		for i := 0; i < n; i++ {
			if excluded == nil || !excluded(i) {
				vals = append(vals, i)
			}
		}
		for i := 0; i < k; i++ {
			j := i + s.Intn(len(vals)-i)
			vals[i], vals[j] = vals[j], vals[i]
			out = append(out, vals[i])
		}
		return out
	}
	// Sparse regime: rejection sampling with a seen-set.
	seen := make(map[int]struct{}, k)
	for len(out) < k {
		v := s.Intn(n)
		if excluded != nil && excluded(v) {
			continue
		}
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Binomial returns a sample from Binomial(n, p). It uses direct simulation
// for small n and a normal approximation would be unsound for tail
// experiments, so direct simulation is used throughout; n in this codebase
// stays small enough (committee sizes) for this to be cheap.
func (s *Source) Binomial(n int, p float64) int {
	count := 0
	for i := 0; i < n; i++ {
		if s.Bool(p) {
			count++
		}
	}
	return count
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32

	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// LogN returns the natural logarithm of n as a float64, with a floor of 1
// so that parameter formulas remain positive for tiny n.
func LogN(n int) float64 {
	l := math.Log(float64(n))
	if l < 1 {
		return 1
	}
	return l
}
