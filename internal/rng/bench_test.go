package rng

import "testing"

func BenchmarkUint64(b *testing.B) {
	src := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = src.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	src := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = src.Intn(1 << 20)
	}
	_ = sink
}

func BenchmarkSplit(b *testing.B) {
	src := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = src.Split(uint64(i))
	}
}

func BenchmarkSampleDistinctSparse(b *testing.B) {
	src := New(1)
	for i := 0; i < b.N; i++ {
		_ = src.SampleDistinct(100, 1<<20, nil)
	}
}

func BenchmarkSampleDistinctDense(b *testing.B) {
	src := New(1)
	for i := 0; i < b.N; i++ {
		_ = src.SampleDistinct(400, 1024, nil)
	}
}
