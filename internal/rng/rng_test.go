package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1, c2 := parent.Split(1), parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Error("children with different indices produced the same first value")
	}
	// Split must not advance the parent.
	p1 := New(7)
	_ = p1.Split(1)
	p2 := New(7)
	if p1.Uint64() != p2.Uint64() {
		t.Error("Split advanced the parent stream")
	}
}

func TestSplitCrossParent(t *testing.T) {
	// New(1).Split(2) must differ from New(2).Split(1).
	a := New(1).Split(2)
	b := New(2).Split(1)
	if a.Uint64() == b.Uint64() {
		t.Error("cross-parent split collision")
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(42).Split(13)
	b := New(42).Split(13)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams diverged at step %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	src := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := src.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt64nProperty(t *testing.T) {
	src := New(99)
	f := func(n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := src.Int64n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	src := New(5)
	const buckets, draws = 8, 80000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[src.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	for b, c := range counts {
		dev := math.Abs(float64(c)-expected) / expected
		if dev > 0.05 {
			t.Errorf("bucket %d: %d draws, %.1f%% off expectation", b, c, dev*100)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(11)
	sum := 0.0
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := src.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolFrequency(t *testing.T) {
	src := New(13)
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		hits := 0
		const draws = 40000
		for i := 0; i < draws; i++ {
			if src.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / draws
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bool(%v) frequency %v", p, got)
		}
	}
}

func TestBoolClamps(t *testing.T) {
	src := New(17)
	if src.Bool(-0.5) {
		t.Error("Bool(-0.5) returned true")
	}
	if !src.Bool(1.5) {
		t.Error("Bool(1.5) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(19)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := src.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	src := New(23)
	for _, tt := range []struct{ k, n int }{
		{0, 10}, {1, 10}, {5, 10}, {10, 10}, {20, 1000}, {999, 1000},
	} {
		got := src.SampleDistinct(tt.k, tt.n, nil)
		if len(got) != tt.k {
			t.Fatalf("SampleDistinct(%d,%d): %d values", tt.k, tt.n, len(got))
		}
		seen := make(map[int]bool, tt.k)
		for _, v := range got {
			if v < 0 || v >= tt.n || seen[v] {
				t.Fatalf("SampleDistinct(%d,%d) invalid value %d", tt.k, tt.n, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctExcluded(t *testing.T) {
	src := New(29)
	excl := func(v int) bool { return v%2 == 0 }
	got := src.SampleDistinct(50, 100, excl)
	for _, v := range got {
		if v%2 == 0 {
			t.Fatalf("sampled excluded value %d", v)
		}
	}
}

func TestSampleDistinctPanicsWhenImpossible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).SampleDistinct(11, 10, nil)
}

func TestSampleDistinctCoverage(t *testing.T) {
	// Sparse-regime sampling must still be able to produce every value.
	src := New(31)
	seen := make(map[int]bool)
	for i := 0; i < 3000; i++ {
		for _, v := range src.SampleDistinct(2, 50, nil) {
			seen[v] = true
		}
	}
	if len(seen) != 50 {
		t.Errorf("only %d/50 values ever sampled", len(seen))
	}
}

func TestBinomialMean(t *testing.T) {
	src := New(37)
	const n, p, reps = 100, 0.3, 3000
	sum := 0
	for i := 0; i < reps; i++ {
		sum += src.Binomial(n, p)
	}
	mean := float64(sum) / reps
	if math.Abs(mean-n*p) > 1 {
		t.Errorf("Binomial(%d,%v) mean %v, want ~%v", n, p, mean, n*p)
	}
}

func TestMul64MatchesBits(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		whi, wlo := bits.Mul64(a, b)
		return hi == whi && lo == wlo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLogN(t *testing.T) {
	if got := LogN(2); got != 1 {
		t.Errorf("LogN(2) = %v, want floor 1", got)
	}
	if got, want := LogN(1024), math.Log(1024); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogN(1024) = %v, want %v", got, want)
	}
}
