package mc

import (
	"context"
	"strings"
	"testing"

	"sublinear/internal/dst"
	"sublinear/internal/fault"
)

// TestCanaryExhaustiveFindsInjectedBug is the harness self-test at
// model-checker strength: exhausting the canary's n=4 universe must find
// the injected bug, minimize it to a single mid-broadcast crash, and
// produce a reproducer that replays to the same failure class.
func TestCanaryExhaustiveFindsInjectedBug(t *testing.T) {
	rep, err := Explore(context.Background(), Config{System: "canary", N: 4, MaxF: -1, Seed: 11}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("exhaustive canary run found no violations")
	}
	if rep.Stats.Scanned != rep.Stats.Universe {
		t.Fatalf("scanned %d of %d states", rep.Stats.Scanned, rep.Stats.Universe)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("violations counted but no failure class recorded")
	}
	f := rep.Failures[0]
	if f.Kind != "oracle" || f.Oracle != "canary-consistency" {
		t.Fatalf("unexpected failure class %s/%s", f.Kind, f.Oracle)
	}
	if got := f.Case.Schedule.FaultyCount(); got != 1 {
		t.Fatalf("minimized repro has %d crashes, want 1", got)
	}
	replay, err := dst.Check(f.Case)
	if err != nil {
		t.Fatal(err)
	}
	if replay == nil || replay.Kind != f.Kind || replay.Oracle != f.Oracle {
		t.Fatalf("repro did not replay: got %v", replay)
	}
}

// TestRealSystemsCleanExhaustive is the acceptance claim: every real
// protocol's bounded universe at n=4 verifies clean. The core protocols
// resolve alpha to their admissibility floor (1 below n=32), so their
// universe is the single fault-free schedule; the crash-tolerant systems
// get full fault universes.
func TestRealSystemsCleanExhaustive(t *testing.T) {
	for _, sysName := range dst.DefaultSystems() {
		rep, err := Explore(context.Background(), Config{System: sysName, N: 4, MaxF: -1, Seed: 7}, nil)
		if err != nil {
			t.Fatalf("%s: %v", sysName, err)
		}
		if !rep.Clean() {
			t.Fatalf("%s: %d violations, first: %v", sysName, rep.Stats.Violations, rep.Failures)
		}
		if rep.Stats.Scanned != rep.Stats.Universe {
			t.Fatalf("%s: scanned %d of %d", sysName, rep.Stats.Scanned, rep.Stats.Universe)
		}
		t.Logf("%s: universe=%d explored=%d symSkipped=%d memoHits=%d",
			sysName, rep.Stats.Universe, rep.Stats.Explored, rep.Stats.SymSkipped, rep.Stats.MemoHits)
	}
}

// TestShardedMatchesSingleProcess: partitioning the index space must not
// change the verdict or any exact count. Explored/MemoHits shift between
// shards (which shard sees a digest first is partition-dependent) but
// their sum plus SymSkipped always accounts for every scanned state.
func TestShardedMatchesSingleProcess(t *testing.T) {
	cfg := Config{System: "canary", N: 4, MaxF: -1, Seed: 11}
	single, err := Explore(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var merged Stats
	for _, r := range Ranges(single.Stats.Universe, 4) {
		rep, err := ExploreRange(context.Background(), cfg, r[0], r[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		merged.Add(rep.Stats)
	}
	if merged.Universe != single.Stats.Universe ||
		merged.Scanned != single.Stats.Scanned ||
		merged.SymSkipped != single.Stats.SymSkipped ||
		merged.Violations != single.Stats.Violations ||
		merged.Frontier != single.Stats.Frontier {
		t.Fatalf("sharded exact counts diverge:\nsingle %+v\nmerged %+v", single.Stats, merged)
	}
	for name, s := range map[string]Stats{"single": single.Stats, "merged": merged} {
		if s.Explored+s.MemoHits+s.SymSkipped != s.Scanned {
			t.Fatalf("%s: %d explored + %d memo + %d sym != %d scanned",
				name, s.Explored, s.MemoHits, s.SymSkipped, s.Scanned)
		}
	}
}

// TestPruningPreservesVerdict: symmetry pruning and memoization are
// performance reductions, not semantics: switching either off must not
// change whether the universe verifies clean.
func TestPruningPreservesVerdict(t *testing.T) {
	base := Config{System: "canary", N: 4, MaxF: -1, Seed: 11}
	full, err := Explore(context.Background(), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.SymSkipped == 0 || full.Stats.MemoHits == 0 {
		t.Fatalf("reductions idle on the canary universe: %+v", full.Stats)
	}
	for name, cfg := range map[string]Config{
		"no-symmetry": {System: "canary", N: 4, MaxF: -1, Seed: 11, NoSymmetry: true},
		"no-memo":     {System: "canary", N: 4, MaxF: -1, Seed: 11, NoMemo: true},
		"plain":       {System: "canary", N: 4, MaxF: -1, Seed: 11, NoSymmetry: true, NoMemo: true},
	} {
		rep, err := Explore(context.Background(), cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Clean() != full.Clean() {
			t.Fatalf("%s changed the verdict", name)
		}
		if cfg.NoSymmetry && rep.Stats.Violations < full.Stats.Violations {
			t.Fatalf("%s found fewer violating schedules (%d) than the pruned run found orbits (%d)",
				name, rep.Stats.Violations, full.Stats.Violations)
		}
		if cfg.NoSymmetry && rep.Stats.SymSkipped != 0 {
			t.Fatalf("%s still skipped %d states", name, rep.Stats.SymSkipped)
		}
		if cfg.NoMemo && !cfg.NoSymmetry && rep.Stats.MemoHits != 0 {
			t.Fatalf("%s still memoized %d states", name, rep.Stats.MemoHits)
		}
	}
}

// TestMemoVerdictReplay: a memo hit on a violating digest must still
// count the violation, keeping Violations partition-invariant. The
// no-symmetry canary run exercises this: every violating orbit has
// rotated twins with identical digests... not identical (the digest
// folds sender ids), so instead check the accounting identity and that
// disabling memo never changes the violation count.
func TestMemoVerdictReplay(t *testing.T) {
	with, err := Explore(context.Background(), Config{System: "canary", N: 4, MaxF: -1, Seed: 11, NoSymmetry: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Explore(context.Background(), Config{System: "canary", N: 4, MaxF: -1, Seed: 11, NoSymmetry: true, NoMemo: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if with.Stats.Violations != without.Stats.Violations {
		t.Fatalf("memoization changed the violation count: %d vs %d",
			with.Stats.Violations, without.Stats.Violations)
	}
	if with.Stats.MemoHits == 0 {
		t.Fatal("memoization never hit on the canary universe")
	}
}

// TestResolveDefaults pins the config resolution rules.
func TestResolveDefaults(t *testing.T) {
	cfg, uni, err := Config{System: "echo", N: 4, MaxF: -1}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Alpha != 0.5 || cfg.MaxF != 2 || cfg.Horizon != 3 {
		t.Fatalf("echo resolved to %+v", cfg)
	}
	if len(cfg.Policies) != len(fault.DeterministicPolicies) {
		t.Fatalf("echo policies %v", cfg.Policies)
	}
	if uni.Size() == 0 {
		t.Fatal("empty universe")
	}
	// Core protocols at small n resolve alpha to 1: zero crash budget.
	cfg, uni, err = Config{System: "election", N: 4, MaxF: -1}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Alpha != 1 || cfg.MaxF != 0 || uni.Size() != 1 {
		t.Fatalf("election at n=4 resolved to alpha=%v maxF=%d size=%d",
			cfg.Alpha, cfg.MaxF, uni.Size())
	}
	// An explicit horizon beyond the system's is clamped: crashes after
	// the system horizon are outside its fault model.
	cfg, _, err = Config{System: "minflood", N: 4, MaxF: -1, Horizon: 99}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	sys, _ := dst.Lookup("minflood")
	if cfg.Horizon != sys.Horizon {
		t.Fatalf("horizon %d not clamped to %d", cfg.Horizon, sys.Horizon)
	}
	if _, _, err := (Config{System: "nope", N: 4}).Resolve(); err == nil ||
		!strings.Contains(err.Error(), "unknown system") {
		t.Fatalf("unknown system resolved: %v", err)
	}
}

// TestRangesPartition: Ranges tiles [0, size) exactly.
func TestRangesPartition(t *testing.T) {
	for _, tc := range []struct{ size, k int64 }{{10, 4}, {3, 8}, {1, 1}, {241, 4}} {
		rs := Ranges(tc.size, int(tc.k))
		next := int64(0)
		for _, r := range rs {
			if r[0] != next || r[1] <= r[0] {
				t.Fatalf("size=%d k=%d: bad range %v after %d", tc.size, tc.k, r, next)
			}
			next = r[1]
		}
		if next != tc.size {
			t.Fatalf("size=%d k=%d: ranges end at %d", tc.size, tc.k, next)
		}
	}
}
