package mc

import (
	"sort"

	"sublinear/internal/metrics"
	"sublinear/internal/netsim"
)

// SymTracer computes a rotation-invariant execution fingerprint — the
// witness behind mc's symmetry pruning. The engine's own digest
// (netsim.Result.Digest) folds each sender's node id and so changes
// under relabeling even when the executions are isomorphic. SymTracer
// drops exactly the label-dependent coordinates and nothing else:
//
//   - each sender's per-round events fold, in emission order, into a
//     private lane keyed by (tag, port, bits, kind-hash) — ports are
//     relative to the sender, so lane values are label-free, and
//     rotating the labels only permutes which node owns which lane. The
//     fold is deliberately order-sensitive: the Symmetric contract
//     requires label-free emission order (inboxes arrive in sender-id
//     order, and DropHalf selects deliveries by outbox index, making
//     emission order observable), and an order-sensitive lane is what
//     catches a machine that violates it;
//   - at every round boundary the multiset of non-empty lane values is
//     folded in sorted order, erasing the node permutation;
//   - crash events fold as a sorted multiset of crash rounds, with the
//     node ids dropped.
//
// Two executions that are rotations of one another therefore produce
// identical SymTracer sums, and TestSymmetrySoundness checks the
// converse direction empirically: for every dst.System flagged
// Symmetric, rotating the schedule leaves both the sum and the
// differential verdict unchanged.
type SymTracer struct {
	h      uint64
	lanes  []uint64 // per-sender lane of the current round; 0 = empty
	sorted []uint64 // scratch for the round flush
	crash  []int    // crash rounds of the current round
	rounds int
}

var _ netsim.Tracer = (*SymTracer)(nil)

// NewSymTracer returns a tracer for an n-node run.
func NewSymTracer(n int) *SymTracer {
	return &SymTracer{h: symFold(0, symSchema), lanes: make([]uint64, n)}
}

// symSchema seeds the sum so it can never alias the engine digest.
const symSchema uint64 = 0x53594d31 // "SYM1"

// Tags mirror the engine digest's event discrimination.
const (
	symRound uint64 = 0xa1
	symCrash uint64 = 0xa2
	symSend  uint64 = 0xa3
	symDrop  uint64 = 0xa4
	symFinal uint64 = 0xa5
)

// symFold is the splitmix64 finalizer over a running accumulator.
func symFold(h, v uint64) uint64 {
	x := h ^ v
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// flushRound folds the finished round's label-free summary: the sorted
// multiset of non-empty sender lanes, then the sorted crash rounds.
func (t *SymTracer) flushRound() {
	t.sorted = t.sorted[:0]
	for u, lane := range t.lanes {
		if lane != 0 {
			t.sorted = append(t.sorted, lane)
			t.lanes[u] = 0
		}
	}
	sort.Slice(t.sorted, func(i, j int) bool { return t.sorted[i] < t.sorted[j] })
	for _, lane := range t.sorted {
		t.h = symFold(t.h, lane)
	}
	sort.Ints(t.crash)
	for _, r := range t.crash {
		t.h = symFold(symFold(t.h, symCrash), uint64(r))
	}
	t.crash = t.crash[:0]
}

// TraceRound closes the previous round and folds the new round number.
func (t *SymTracer) TraceRound(round int) {
	t.flushRound()
	t.h = symFold(symFold(t.h, symRound), uint64(round))
	t.rounds = round
}

// TraceCrash records the crash round, dropping the node label.
func (t *SymTracer) TraceCrash(_, round int) { t.crash = append(t.crash, round) }

// TraceMessage folds one message into its sender's lane in emission
// order. The lane seed is nonzero so a sender with events is
// distinguishable from one without, mirroring the engine's lane
// sentinel.
func (t *SymTracer) TraceMessage(sender, _, port int, kind metrics.Kind, bits int, dropped bool) {
	tag := symSend
	if dropped {
		tag = symDrop
	}
	lane := t.lanes[sender]
	if lane == 0 {
		lane = symSchema
	}
	lane = symFold(lane, tag|uint64(port)<<8|uint64(bits)<<40)
	t.lanes[sender] = symFold(lane, metrics.KindHash(kind))
}

// TraceViolation and TraceAnnotation carry node-attributed free text and
// do not fold into the sum, matching the engine digest's treatment.
func (t *SymTracer) TraceViolation(int, int, string)  {}
func (t *SymTracer) TraceAnnotation(int, int, string) {}

// TraceFinish folds the label-free run totals. The engine digest itself
// is deliberately excluded: it is the label-sensitive fingerprint this
// tracer exists to replace.
func (t *SymTracer) TraceFinish(rounds int, messages, bits int64, _ uint64) {
	t.flushRound()
	t.h = symFold(t.h, symFinal)
	t.h = symFold(t.h, uint64(rounds))
	t.h = symFold(t.h, uint64(messages))
	t.h = symFold(t.h, uint64(bits))
}

// Sum returns the rotation-invariant fingerprint. Call after the run
// completes (TraceFinish folds the totals).
func (t *SymTracer) Sum() uint64 { return t.h }
