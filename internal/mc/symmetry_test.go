package mc

import (
	"testing"

	"sublinear/internal/dst"
	"sublinear/internal/fault"
	"sublinear/internal/netsim"
)

// verdictClass collapses a differential check result to its bug class.
func verdictClass(t *testing.T, c dst.Case) string {
	t.Helper()
	f, err := dst.Check(c)
	if err != nil {
		t.Fatalf("check %+v: %v", c, err)
	}
	if f == nil {
		return "clean"
	}
	return f.Kind + "/" + f.Oracle
}

// symSum runs the case sequentially with a SymTracer attached.
func symSum(t *testing.T, sys *dst.System, c dst.Case) uint64 {
	t.Helper()
	tr := NewSymTracer(c.N)
	if _, err := sys.Run(c, netsim.Sequential, tr); err != nil {
		t.Fatalf("run %+v: %v", c, err)
	}
	return tr.Sum()
}

// TestSymmetrySoundness guards the pruning rule: for every system that
// declares Symmetric, rotating a schedule's node labels must leave both
// the rotation-invariant execution fingerprint and the differential
// verdict unchanged, over the system's own enumerated universe. This is
// the empirical converse of the wiring argument in the package comment —
// if a registered system ever reads node IDs, coins or per-node inputs,
// this test fails before mc can prune unsoundly with it.
func TestSymmetrySoundness(t *testing.T) {
	var symmetric []string
	for _, name := range dst.AllSystems() {
		sys, err := dst.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if sys.Symmetric {
			symmetric = append(symmetric, name)
		}
	}
	if len(symmetric) < 3 {
		t.Fatalf("need >= 3 symmetric systems for the table, have %v", symmetric)
	}
	for _, name := range symmetric {
		sys, _ := dst.Lookup(name)
		for _, n := range []int{3, 5} {
			alpha := sys.ResolveAlpha(n, 0)
			maxF := sys.MaxF(n, alpha)
			uni := fault.Universe{N: n, MaxF: maxF, Horizon: min(sys.Horizon, 2), Seed: 9}
			if err := uni.Validate(); err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			size := uni.Size()
			if size > 160 {
				size = 160
			}
			for i := int64(0); i < size; i++ {
				s := uni.At(i)
				base := dst.Case{System: name, N: n, Alpha: alpha, Seed: 9, Schedule: s}
				wantSum := symSum(t, sys, base)
				wantClass := verdictClass(t, base)
				for k := 1; k < n; k++ {
					rot := base
					rot.Schedule = s.Rotate(k)
					if got := symSum(t, sys, rot); got != wantSum {
						t.Fatalf("%s n=%d schedule %v rotate %d: sym digest %#x != %#x",
							name, n, s.Crashes, k, got, wantSum)
					}
					if got := verdictClass(t, rot); got != wantClass {
						t.Fatalf("%s n=%d schedule %v rotate %d: verdict %q != %q",
							name, n, s.Crashes, k, got, wantClass)
					}
				}
			}
		}
	}
}

// TestAsymmetricSystemIsDetectable documents why floodset is not flagged
// Symmetric: its per-node random inputs are attached to node labels, so
// some rotation of some schedule changes the observable execution. If
// this test ever fails, floodset became input-free and could be flagged.
func TestAsymmetricSystemIsDetectable(t *testing.T) {
	sys, err := dst.Lookup("floodset")
	if err != nil {
		t.Fatal(err)
	}
	if sys.Symmetric {
		t.Fatal("floodset is flagged Symmetric; this test and the flag disagree")
	}
	uni := fault.Universe{N: 4, MaxF: 2, Horizon: 2, Seed: 3}
	for i := int64(0); i < uni.Size(); i++ {
		s := uni.At(i)
		base := dst.Case{System: "floodset", N: 4, Alpha: 0.5, Seed: 3, Schedule: s}
		want := symSum(t, sys, base)
		for k := 1; k < 4; k++ {
			rot := base
			rot.Schedule = s.Rotate(k)
			if symSum(t, sys, rot) != want {
				return // found the asymmetry witness
			}
		}
	}
	t.Fatal("no schedule rotation changed floodset's fingerprint; is it symmetric after all?")
}
