package experiment

import (
	"fmt"
	"sort"
	"strconv"
)

// Runner is a registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

// registry is the single experiment table. Each experiments*.go file
// registers its runners in an init, so the table cannot drift from the
// implementations, and every consumer — cmd/experiments, simd, tests —
// dispatches through the same entries.
var registry []Runner

// Register adds a runner to the shared experiment table. It panics on a
// duplicate or empty ID; registration happens at init time, so a mistake
// fails every test immediately rather than shadowing an experiment.
func Register(r Runner) {
	if r.ID == "" || r.Run == nil {
		panic("experiment: Register with empty ID or nil Run")
	}
	if _, ok := Find(r.ID); ok {
		panic(fmt.Sprintf("experiment: duplicate ID %q", r.ID))
	}
	registry = append(registry, r)
	sort.SliceStable(registry, func(i, j int) bool {
		return idOrder(registry[i].ID) < idOrder(registry[j].ID)
	})
}

// idOrder sorts E2 before E10: numeric suffix first, lexical fallback.
func idOrder(id string) int {
	if len(id) > 1 {
		if n, err := strconv.Atoi(id[1:]); err == nil {
			return n
		}
	}
	return 1 << 30
}

// All returns every registered experiment in ID order.
func All() []Runner {
	out := make([]Runner, len(registry))
	copy(out, registry)
	return out
}

// Find returns the runner with the given ID.
func Find(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
