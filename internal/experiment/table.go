// Package experiment is the reproduction harness: one named experiment per
// claim of the paper (see DESIGN.md's experiment index E1–E11), each
// sweeping workloads over the simulator, collecting statistics, and
// rendering the tables recorded in EXPERIMENTS.md.
package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-text table with an optional caption.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// NewTable creates a table with the given caption and column headers.
func NewTable(caption string, header ...string) *Table {
	return &Table{Caption: caption, Header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Caption != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Caption); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the table as CSV (caption omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v <= -1e6:
		return fmt.Sprintf("%.3g", v)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	case v < 0.01 && v > -0.01:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
