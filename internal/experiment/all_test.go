package experiment

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment in quick mode
// end to end: each must complete without error, produce at least one
// non-empty table, and render. This is the regression net for the
// reproduction harness itself (the full-scale numbers are recorded in
// EXPERIMENTS.md).
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still run full protocol sweeps")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			rep, err := r.Run(Config{Quick: true, SeedBase: 1})
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if rep.ID != r.ID {
				t.Errorf("report ID %q, want %q", rep.ID, r.ID)
			}
			if len(rep.Tables) == 0 {
				t.Fatalf("%s produced no tables", r.ID)
			}
			for i, tbl := range rep.Tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("%s table %d is empty", r.ID, i)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Header) {
						t.Errorf("%s table %d: row width %d vs header %d", r.ID, i, len(row), len(tbl.Header))
					}
				}
			}
			var sb strings.Builder
			if err := rep.Render(&sb); err != nil {
				t.Fatalf("%s render: %v", r.ID, err)
			}
			if !strings.Contains(sb.String(), r.ID) {
				t.Errorf("%s render missing header", r.ID)
			}
		})
	}
}

func TestFigureHelper(t *testing.T) {
	rep := &Report{ID: "X", Title: "t"}
	rep.figure("fig", true, []string{"a", "b"}, []float64{1, 10})
	if len(rep.Figures) != 1 {
		t.Fatal("figure not attached")
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fig") {
		t.Error("figure title missing from render")
	}
}
