package experiment

import (
	"fmt"
	"math"

	"sublinear/internal/baseline"
	"sublinear/internal/fault"
	"sublinear/internal/netsim"
	"sublinear/internal/rng"
	"sublinear/internal/topo"
)

func init() {
	Register(Runner{"E14", "Topology-general elections: graph family x adversary", runE14})
}

// runE14 is the in-process twin of the topo-matrix fleet sweep: it runs
// the diameter-two election (Chatterjee-Kharbanda-Pandurangan style
// candidacy sampling) and its well-connected variant across graph
// families and crash adversaries, and checks the measured message totals
// against the O(n log n) target that motivates the family — the repo's
// answer to the paper's open problem 2 direction (general networks).
func runE14(cfg Config) (*Report, error) {
	rep := &Report{ID: "E14", Title: "Topology-general elections: message cost and success across graph families"}
	n := pick(cfg, 1024, 128)
	reps := pick(cfg, 20, 5)
	f := n / 10
	nlogn := float64(n) * math.Log2(float64(n))

	type point struct {
		label    string
		topology string
		wc       bool // wcelection instead of d2election
		faulty   bool
	}
	points := []point{
		{"d2/cluster-d2", "cluster-d2", false, false},
		{"d2/cluster-d2/crash", "cluster-d2", false, true},
		{"d2/star", "star", false, false},
		{"d2/clique", "clique", false, false},
		{"d2/clique/crash", "clique", false, true},
		{"wc/wellconnected", "wellconnected", true, false},
		{"wc/wellconnected/crash", "wellconnected", true, true},
		{"wc/random-regular", "random-regular", true, false},
	}

	tbl := NewTable(fmt.Sprintf("n=%d, f=%d random crashes (DropHalf) on crash rows, %d reps", n, f, reps),
		"point", "success", "mean msgs", "msgs/(n lg n)", "mean rounds")
	var labels []string
	var ratios []float64
	for _, pt := range points {
		cfg.progressf("E14: %s\n", pt.label)
		ok := 0
		var msgs, rounds float64
		for r := 0; r < reps; r++ {
			seed := cfg.SeedBase + uint64(r)*7919
			tp, err := topo.ResolveTopology(pt.topology, n, seed)
			if err != nil {
				return nil, err
			}
			var adv netsim.Adversary
			if pt.faulty {
				adv = fault.Must(fault.NewRandomPlan(n, f, 3, fault.DropHalf, rng.New(seed^0xfa)))
			}
			var res *baseline.Result
			if pt.wc {
				res, err = baseline.RunWCElection(baseline.WCConfig{N: n, Seed: seed, Topology: tp}, adv)
			} else {
				res, err = baseline.RunD2Election(baseline.D2Config{N: n, Seed: seed, Topology: tp}, adv)
			}
			if err != nil {
				return nil, err
			}
			if res.Success {
				ok++
			}
			msgs += float64(res.Counters.Messages())
			rounds += float64(res.Rounds)
		}
		meanMsgs := msgs / float64(reps)
		tbl.AddRow(pt.label, rate(ok, reps), fmt.Sprintf("%.0f", meanMsgs),
			fmt.Sprintf("%.2f", meanMsgs/nlogn), fmt.Sprintf("%.1f", rounds/float64(reps)))
		labels = append(labels, pt.label)
		ratios = append(ratios, meanMsgs/nlogn)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.figure("figure: messages/(n lg n) by point", false, labels, ratios)
	rep.notef("diameter-two rows stay within a constant factor of n lg n (the clique row pays Theta(n) per candidate, still O(n lg n) by the O(lg n) candidacy bound); the well-connected variant trades rounds (diameter-many) for the same candidacy-driven message bill. Crash rows may lose uniqueness when a candidate dies mid-relay — the success column quantifies how often.")
	return rep, nil
}
