package experiment

import "testing"

func TestSeedRanges(t *testing.T) {
	cases := []struct {
		reps, size int
		want       []SeedRange
	}{
		{0, 4, nil},
		{10, 0, []SeedRange{{0, 10}}},
		{10, 4, []SeedRange{{0, 4}, {4, 8}, {8, 10}}},
		{8, 4, []SeedRange{{0, 4}, {4, 8}}},
		{3, 100, []SeedRange{{0, 3}}},
	}
	for _, c := range cases {
		got := SeedRanges(c.reps, c.size)
		if len(got) != len(c.want) {
			t.Fatalf("SeedRanges(%d, %d) = %v, want %v", c.reps, c.size, got, c.want)
		}
		total := 0
		for i, r := range got {
			if r != c.want[i] {
				t.Fatalf("SeedRanges(%d, %d) = %v, want %v", c.reps, c.size, got, c.want)
			}
			total += r.Reps()
		}
		if total != c.reps {
			t.Fatalf("ranges cover %d reps, want %d", total, c.reps)
		}
	}
}

// TestSeedRangesPartition checks the decomposition invariant the merger
// depends on: consecutive, gapless, in repetition order.
func TestSeedRangesPartition(t *testing.T) {
	for reps := 1; reps <= 40; reps++ {
		for size := 1; size <= 10; size++ {
			prev := 0
			for _, r := range SeedRanges(reps, size) {
				if r.Lo != prev || r.Hi <= r.Lo {
					t.Fatalf("reps=%d size=%d: bad range %+v after %d", reps, size, r, prev)
				}
				prev = r.Hi
			}
			if prev != reps {
				t.Fatalf("reps=%d size=%d: ranges end at %d", reps, size, prev)
			}
		}
	}
}

func TestStandardSweepsValid(t *testing.T) {
	sweeps := StandardSweeps()
	if len(sweeps) == 0 {
		t.Fatal("no standard sweeps")
	}
	for _, s := range sweeps {
		if err := s.Validate(); err != nil {
			t.Errorf("standard sweep invalid: %v", err)
		}
		if s.TotalReps() <= 0 {
			t.Errorf("sweep %q has no reps", s.Name)
		}
		got, ok := FindSweep(s.Name)
		if !ok || got.Name != s.Name {
			t.Errorf("FindSweep(%q) = %v, %v", s.Name, got.Name, ok)
		}
	}
	if _, ok := FindSweep("no-such-sweep"); ok {
		t.Error("FindSweep accepted an unknown name")
	}
}

func TestSweepScale(t *testing.T) {
	s, _ := FindSweep("election-scaling")
	scaled := s.Scale(3)
	for _, p := range scaled.Points {
		if p.Reps != 3 {
			t.Fatalf("Scale(3) left reps=%d", p.Reps)
		}
	}
	// The original is untouched.
	for _, p := range s.Points {
		if p.Reps == 3 {
			t.Fatal("Scale mutated its receiver")
		}
	}
	same := s.Scale(0)
	for i, p := range same.Points {
		if p.Reps != s.Points[i].Reps {
			t.Fatal("Scale(0) changed reps")
		}
	}
}
