package experiment

import (
	"fmt"
	"io"
	"sort"

	"sublinear"
	"sublinear/internal/stats"
	"sublinear/internal/viz"
)

// Report is the output of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*Table
	// Figures are terminal bar charts rendered after the tables.
	Figures []viz.Bars
	// Notes carries fit results, verdicts and caveats, one per line.
	Notes []string
}

// Render writes the whole report as text.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, f := range r.Figures {
		if err := f.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// figure appends a bar-chart figure built from parallel label/value
// slices.
func (r *Report) figure(title string, logScale bool, labels []string, values []float64) {
	r.Figures = append(r.Figures, viz.Bars{
		Title: title, Labels: labels, Values: values, LogScale: logScale,
	})
}

func (r *Report) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Config controls an experiment invocation.
type Config struct {
	// Quick shrinks sweeps and repetition counts for CI-scale runs.
	Quick bool
	// Progress receives one line per sweep point; nil discards.
	Progress io.Writer
	// SeedBase offsets every seed, for independent re-runs.
	SeedBase uint64
}

func (c Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format, args...)
	}
}

// pick returns quick when c.Quick, else full.
func pick[T any](c Config, full, quick T) T {
	if c.Quick {
		return quick
	}
	return full
}

// electionStats aggregates repeated election runs at one sweep point.
type electionStats struct {
	Messages stats.Summary
	Bits     stats.Summary
	Rounds   stats.Summary
	Success  int
	Reps     int
	// LeaderNonFaulty counts successful runs whose agreed leader was a
	// non-faulty node.
	LeaderNonFaulty int
	// LeaderLive counts successful runs whose agreed leader never
	// crashed.
	LeaderLive int
	Failures   []string
}

// runElectionReps runs reps independent elections and aggregates.
func runElectionReps(opts sublinear.Options, reps int, seedBase uint64) (electionStats, error) {
	var (
		agg        electionStats
		msgs, bits []float64
		rounds     []float64
	)
	agg.Reps = reps
	for rep := 0; rep < reps; rep++ {
		opts.Seed = seedBase + uint64(rep)*7919
		res, err := sublinear.Elect(opts)
		if err != nil {
			return agg, err
		}
		msgs = append(msgs, float64(res.Counters.Messages()))
		bits = append(bits, float64(res.Counters.Bits()))
		rounds = append(rounds, float64(res.Rounds))
		if res.Eval.Success {
			agg.Success++
			if !res.Eval.LeaderCrashed {
				agg.LeaderLive++
			}
			if res.Eval.LeaderNode >= 0 && !res.Faulty[res.Eval.LeaderNode] {
				agg.LeaderNonFaulty++
			}
		} else {
			agg.Failures = append(agg.Failures, res.Eval.Reason)
		}
	}
	agg.Messages = stats.Summarize(msgs)
	agg.Bits = stats.Summarize(bits)
	agg.Rounds = stats.Summarize(rounds)
	return agg, nil
}

// agreementStats aggregates repeated agreement runs at one sweep point.
type agreementStats struct {
	Messages stats.Summary
	Bits     stats.Summary
	Rounds   stats.Summary
	Success  int
	Reps     int
	Failures []string
}

// runAgreementReps runs reps independent agreements with random inputs
// (P[1] = pOne) and aggregates.
func runAgreementReps(opts sublinear.Options, pOne float64, reps int, seedBase uint64) (agreementStats, error) {
	var (
		agg        agreementStats
		msgs, bits []float64
		rounds     []float64
	)
	agg.Reps = reps
	for rep := 0; rep < reps; rep++ {
		opts.Seed = seedBase + uint64(rep)*7919
		inputs := sublinear.RandomInputs(opts.N, pOne, opts.Seed^0xbeef)
		res, err := sublinear.Agree(opts, inputs)
		if err != nil {
			return agg, err
		}
		msgs = append(msgs, float64(res.Counters.Messages()))
		bits = append(bits, float64(res.Counters.Bits()))
		rounds = append(rounds, float64(res.Rounds))
		if res.Eval.Success {
			agg.Success++
		} else {
			agg.Failures = append(agg.Failures, res.Eval.Reason)
		}
	}
	agg.Messages = stats.Summarize(msgs)
	agg.Bits = stats.Summarize(bits)
	agg.Rounds = stats.Summarize(rounds)
	return agg, nil
}

// rate formats k/n as a rate string with a Wilson interval.
func rate(k, n int) string {
	lo, hi := stats.WilsonInterval(k, n)
	return fmt.Sprintf("%d/%d (%.2f, CI %.2f-%.2f)", k, n, float64(k)/float64(n), lo, hi)
}

// topFailures summarises failure reasons.
func topFailures(reasons []string) string {
	if len(reasons) == 0 {
		return ""
	}
	counts := make(map[string]int)
	for _, r := range reasons {
		counts[r]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return counts[keys[i]] > counts[keys[j]] })
	out := ""
	for i, k := range keys {
		if i == 2 {
			break
		}
		if i > 0 {
			out += "; "
		}
		out += fmt.Sprintf("%s x%d", k, counts[k])
	}
	return out
}
