package experiment

import "fmt"

// This file describes protocol sweeps as data rather than code, so a
// distributed coordinator (internal/fleet) can decompose them into
// seed-range shards, farm the shards out to simd workers, and merge the
// results back into the same kind of tables the in-process harness
// renders. The bespoke E1–E14 experiments stay single-process functions;
// a Sweep is the distribution-friendly subset: a list of parameter
// points, each repeated Reps times with the standard seed schedule
// seed(r) = base + r*SeedStride.

// SeedStride is the per-repetition seed increment every harness in this
// repository uses (see runElectionReps and simsvc.runSpec). A shard
// covering repetitions [Lo, Hi) of a run with base seed s therefore runs
// with base seed s + Lo*SeedStride, and the union over shards replays
// exactly the repetition seeds of the unsharded run.
const SeedStride = 7919

// SweepPoint is one parameter point of a sweep. The fields mirror the
// simsvc job schema (this package cannot import simsvc, which imports
// the experiment registry); zero values mean the service defaults.
type SweepPoint struct {
	// Label names the point in rendered tables ("n=64", "alpha=0.7").
	Label string
	// Protocol is a simsvc protocol name: election, agreement, minagree,
	// or a Table-I baseline (gk, floodset, gossip, rotating, allpairs,
	// kutten, amp).
	Protocol string
	N        int
	Alpha    float64
	// F is the faulty-node count; nil derives (1-Alpha)*N.
	F        *int
	POne     float64
	Policy   string
	Engine   string
	Explicit bool
	Hunter   bool
	Late     bool
	// Topology names the graph family for topology-general protocols
	// (d2election, wcelection); empty selects the protocol's native
	// family. Non-topology protocols must leave it empty.
	Topology string
	// Reps is the repetition budget of this point.
	Reps int
}

// Sweep is a named list of points: the decomposable description of one
// experiment-style table.
type Sweep struct {
	Name   string
	Title  string
	Points []SweepPoint
}

// TotalReps sums the repetition budget over all points.
func (s Sweep) TotalReps() int {
	total := 0
	for _, p := range s.Points {
		total += p.Reps
	}
	return total
}

// SeedRange is a half-open repetition interval [Lo, Hi) of one point.
type SeedRange struct {
	Lo, Hi int
}

// Reps returns the repetition count of the range.
func (r SeedRange) Reps() int { return r.Hi - r.Lo }

// SeedRanges partitions reps repetitions into consecutive ranges of at
// most size repetitions each: the seed-range decomposition of one sweep
// point. size <= 0 means one range covering everything. The ranges are
// returned in repetition order, which is the order a merger must
// concatenate shard results in to reproduce the unsharded series.
func SeedRanges(reps, size int) []SeedRange {
	if reps <= 0 {
		return nil
	}
	if size <= 0 || size > reps {
		size = reps
	}
	out := make([]SeedRange, 0, (reps+size-1)/size)
	for lo := 0; lo < reps; lo += size {
		hi := lo + size
		if hi > reps {
			hi = reps
		}
		out = append(out, SeedRange{Lo: lo, Hi: hi})
	}
	return out
}

// standardSweeps are the named sweeps fleetctl accepts out of the box.
// Repetition budgets are modest; callers scale them with Scale.
var standardSweeps = []Sweep{
	{
		Name:  "election-scaling",
		Title: "election message complexity vs n (alpha=0.6)",
		Points: []SweepPoint{
			{Label: "n=32", Protocol: "election", N: 32, Alpha: 0.6, Reps: 16},
			{Label: "n=48", Protocol: "election", N: 48, Alpha: 0.6, Reps: 16},
			{Label: "n=64", Protocol: "election", N: 64, Alpha: 0.6, Reps: 16},
			{Label: "n=96", Protocol: "election", N: 96, Alpha: 0.6, Reps: 16},
		},
	},
	{
		Name:  "agreement-alpha",
		Title: "agreement cost vs guaranteed non-faulty fraction (n=64)",
		Points: []SweepPoint{
			{Label: "alpha=0.55", Protocol: "agreement", N: 64, Alpha: 0.55, Reps: 16},
			{Label: "alpha=0.70", Protocol: "agreement", N: 64, Alpha: 0.70, Reps: 16},
			{Label: "alpha=0.85", Protocol: "agreement", N: 64, Alpha: 0.85, Reps: 16},
			{Label: "alpha=1.00", Protocol: "agreement", N: 64, Alpha: 1.00, Reps: 16},
		},
	},
	{
		Name:  "table1-mini",
		Title: "Table I comparators at n=64 (alpha=0.7)",
		Points: []SweepPoint{
			{Label: "election", Protocol: "election", N: 64, Alpha: 0.7, Reps: 12},
			{Label: "agreement", Protocol: "agreement", N: 64, Alpha: 0.7, Reps: 12},
			{Label: "gk", Protocol: "gk", N: 64, Alpha: 0.7, Reps: 12},
			{Label: "floodset", Protocol: "floodset", N: 64, Alpha: 0.7, Reps: 12},
			{Label: "gossip", Protocol: "gossip", N: 64, Alpha: 0.7, Reps: 12},
			{Label: "rotating", Protocol: "rotating", N: 64, Alpha: 0.7, Reps: 12},
			{Label: "allpairs", Protocol: "allpairs", N: 64, Alpha: 0.7, Reps: 12},
			{Label: "kutten", Protocol: "kutten", N: 64, Alpha: 0.7, Reps: 12},
			{Label: "amp", Protocol: "amp", N: 64, Alpha: 0.7, Reps: 12},
		},
	},
	{
		Name:  "topo-matrix",
		Title: "topology-general elections: graph family x adversary (n=64)",
		Points: []SweepPoint{
			{Label: "d2/cluster-d2", Protocol: "d2election", N: 64, Alpha: 0.9, F: intp(0), Topology: "cluster-d2", Reps: 12},
			{Label: "d2/cluster-d2/f", Protocol: "d2election", N: 64, Alpha: 0.9, F: intp(6), Policy: "half", Topology: "cluster-d2", Reps: 12},
			{Label: "d2/star", Protocol: "d2election", N: 64, Alpha: 0.9, F: intp(0), Topology: "star", Reps: 12},
			{Label: "d2/clique", Protocol: "d2election", N: 64, Alpha: 0.9, F: intp(0), Topology: "clique", Reps: 12},
			{Label: "d2/clique/f", Protocol: "d2election", N: 64, Alpha: 0.9, F: intp(6), Policy: "random", Topology: "clique", Reps: 12},
			{Label: "wc/wellconnected", Protocol: "wcelection", N: 64, Alpha: 0.9, F: intp(0), Topology: "wellconnected", Reps: 12},
			{Label: "wc/wellconnected/f", Protocol: "wcelection", N: 64, Alpha: 0.9, F: intp(6), Policy: "half", Topology: "wellconnected", Reps: 12},
			{Label: "wc/random-regular", Protocol: "wcelection", N: 64, Alpha: 0.9, F: intp(0), Topology: "random-regular", Reps: 12},
			{Label: "wc/ring", Protocol: "wcelection", N: 64, Alpha: 0.9, F: intp(0), Topology: "ring", Reps: 12},
		},
	},
}

// intp builds the optional faulty-count pointer sweep points use.
func intp(v int) *int { return &v }

// StandardSweeps returns the named sweeps, in declaration order.
func StandardSweeps() []Sweep {
	out := make([]Sweep, len(standardSweeps))
	copy(out, standardSweeps)
	return out
}

// FindSweep returns the named standard sweep.
func FindSweep(name string) (Sweep, bool) {
	for _, s := range standardSweeps {
		if s.Name == name {
			return s, true
		}
	}
	return Sweep{}, false
}

// Scale returns a copy of the sweep with every point's repetition budget
// set to reps (reps <= 0 keeps the defaults).
func (s Sweep) Scale(reps int) Sweep {
	out := s
	out.Points = make([]SweepPoint, len(s.Points))
	copy(out.Points, s.Points)
	if reps > 0 {
		for i := range out.Points {
			out.Points[i].Reps = reps
		}
	}
	return out
}

// Validate rejects sweeps a coordinator cannot plan.
func (s Sweep) Validate() error {
	if len(s.Points) == 0 {
		return fmt.Errorf("sweep %q has no points", s.Name)
	}
	for i, p := range s.Points {
		if p.Label == "" {
			return fmt.Errorf("sweep %q point %d has no label", s.Name, i)
		}
		if p.Protocol == "" {
			return fmt.Errorf("sweep %q point %q has no protocol", s.Name, p.Label)
		}
		if p.Reps <= 0 {
			return fmt.Errorf("sweep %q point %q has no repetition budget", s.Name, p.Label)
		}
	}
	return nil
}
