package experiment

import (
	"fmt"

	"sublinear/internal/graph"
	"sublinear/internal/rng"
	"sublinear/internal/walks"
)

func init() {
	Register(Runner{"E12", "Open problem 2: general-graph walk election", runE12})
}

// runE12 explores the paper's open problem 2 — message complexity of
// leader election in general graphs — with the random-walk sampling
// election of internal/walks. On each topology the experiment measures
// the mixing time, runs the election first with the complete-network walk
// budget (stretch 1) and then with the budget scaled by the measured
// mixing time, showing (a) fast-mixing graphs match the paper's Õ(sqrt n)
// complete-network cost and (b) slow mixers need (and their success is
// restored by) a t_mix-proportional budget — the shape of the
// Gilbert–Robinson–Sourav and Kowalski–Mosteiro bounds the related work
// cites.
func runE12(cfg Config) (*Report, error) {
	rep := &Report{ID: "E12", Title: "Open problem 2: walk-based election on general graphs"}
	n := pick(cfg, 1024, 256)
	reps := pick(cfg, 20, 6)

	type topo struct {
		name string
		mk   func() (graph.Graph, error)
	}
	side := 32
	dim := 10
	ringN := 256
	if cfg.Quick {
		side, dim, ringN = 16, 8, 128
	}
	topos := []topo{
		{"complete", func() (graph.Graph, error) { return graph.Complete(n) }},
		{"random-8-regular", func() (graph.Graph, error) { return graph.RandomRegular(n, 8, 5) }},
		{"hypercube", func() (graph.Graph, error) { return graph.Hypercube(dim) }},
		{"torus", func() (graph.Graph, error) { return graph.Torus(side, side) }},
		{"ring", func() (graph.Graph, error) { return graph.Ring(ringN) }},
	}

	var figLabels []string
	var figMsgs []float64
	tbl := NewTable("Walk election: stretch 1 = complete-network budget; stretch t = scaled by measured mixing time",
		"topology", "n", "t_mix(1/4)", "stretch", "walk len", "msgs(mean)", "rounds", "unique leader", "full agreement")

	for _, tp := range topos {
		g, err := tp.mk()
		if err != nil {
			return nil, err
		}
		tmix := graph.MixingTime(g, 0.25, 100000)
		stretches := []float64{1}
		scaled := float64(tmix) / rng.LogN(g.N())
		if scaled > 1.5 {
			// Cap the ring's budget at a demonstrative level; the full
			// t_mix ~ n^2 scaling is noted rather than simulated.
			if scaled > 200 {
				scaled = 200
			}
			stretches = append(stretches, scaled)
		}
		for _, s := range stretches {
			cfg.progressf("E12: %s stretch=%.1f\n", g.Name(), s)
			var msgs, rounds float64
			unique, full := 0, 0
			var wl int
			for r := 0; r < reps; r++ {
				res, err := walks.Run(g, cfg.SeedBase+uint64(r)*149, walks.Params{Stretch: s}, nil)
				if err != nil {
					return nil, err
				}
				msgs += float64(res.Counters.Messages())
				rounds += float64(res.Rounds)
				wl = res.WalkLen
				if res.Eval.Success {
					unique++
				}
				if res.Eval.FullAgreement {
					full++
				}
			}
			fr := float64(reps)
			tbl.AddRow(tp.name, g.N(), tmix, s, wl, msgs/fr, rounds/fr,
				rate(unique, reps), rate(full, reps))
			figLabels = append(figLabels, fmt.Sprintf("%s s=%.1f", tp.name, s))
			figMsgs = append(figMsgs, msgs/fr)
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.figure("figure: walk-election messages by topology (log scale)", true, figLabels, figMsgs)

	// Walk agreement on a fast/slow pair: the same budget story with
	// minimum-bit marks.
	agreeTbl := NewTable("Walk agreement (P[1]=1/2 inputs), same walk machinery with minimum-bit marks",
		"topology", "n", "stretch", "msgs(mean)", "success")
	agreeReps := pick(cfg, 12, 4)
	agreeCases := []func() (graph.Graph, error){
		func() (graph.Graph, error) { return graph.RandomRegular(n, 8, 5) },
		func() (graph.Graph, error) { return graph.Torus(side, side) },
	}
	for _, mk := range agreeCases {
		g, err := mk()
		if err != nil {
			return nil, err
		}
		stretches := []float64{1}
		if tm := graph.MixingTime(g, 0.25, 100000); float64(tm)/rng.LogN(g.N()) > 1.5 {
			stretches = append(stretches, float64(tm)/rng.LogN(g.N()))
		}
		for _, s := range stretches {
			cfg.progressf("E12: agreement %s stretch=%.1f\n", g.Name(), s)
			var msgs float64
			ok := 0
			for r := 0; r < agreeReps; r++ {
				seed := cfg.SeedBase + uint64(r)*151
				inputs := randomBits(g.N(), 0.5, seed^0xfeed)
				res, err := walks.RunAgreement(g, seed, walks.Params{Stretch: s}, inputs, nil)
				if err != nil {
					return nil, err
				}
				msgs += float64(res.Counters.Messages())
				if res.Eval.Success {
					ok++
				}
			}
			agreeTbl.AddRow(g.Name(), g.N(), s, msgs/float64(agreeReps), rate(ok, agreeReps))
		}
	}
	rep.Tables = append(rep.Tables, agreeTbl)

	rep.notef("fast mixers (complete, random-regular, hypercube) elect at the Õ(sqrt n) budget; the torus and ring need the budget scaled by t_mix, reproducing the Õ(t_mix * sqrt n) shape of [43]/[44]. The ring's full t_mix ~ n^2 budget is capped at stretch 200 for run time; success improves with stretch exactly as the theory predicts.")
	return rep, nil
}

// randomBits returns n bits, each 1 with probability pOne.
func randomBits(n int, pOne float64, seed uint64) []int {
	src := rng.New(seed)
	out := make([]int, n)
	for i := range out {
		if src.Bool(pOne) {
			out[i] = 1
		}
	}
	return out
}
