package experiment

import (
	"fmt"
	"math"

	"sublinear"
	"sublinear/internal/baseline"
	"sublinear/internal/fault"
	"sublinear/internal/rng"
	"sublinear/internal/stats"
)

func init() {
	Register(Runner{"E1", "Table I: agreement protocol comparison", runE1})
	Register(Runner{"E2", "Theorem 4.1: election messages vs n", runE2})
	Register(Runner{"E3", "Theorem 4.1: election messages vs alpha", runE3})
	Register(Runner{"E4", "Theorem 4.1: leader uniqueness and non-faulty probability", runE4})
	Register(Runner{"E5", "Theorem 5.1: agreement message scaling", runE5})
}

// runE1 reproduces Table I: the same agreement workload measured across
// the paper's protocol landscape, plus the equivalent comparison for
// leader election. Absolute numbers are simulator counts; the shape to
// check is who is sublinear, who is linear, who is quadratic, and who
// survives f = n/2 - 1 crashes.
func runE1(cfg Config) (*Report, error) {
	rep := &Report{ID: "E1", Title: "Table I: agreement protocol comparison"}
	ns := pick(cfg, []int{1024, 4096}, []int{512})
	reps := pick(cfg, 5, 2)

	agreeTbl := NewTable(
		"Agreement protocols, random inputs (P[1]=1/2), f=n/2-1 random crashes (DropHalf) where tolerated",
		"protocol", "model", "tolerates", "n", "f", "msgs", "bits", "rounds", "success")
	electTbl := NewTable(
		"Leader election protocols, f=n/2-1 random crashes (DropHalf) where tolerated",
		"protocol", "model", "tolerates", "n", "f", "msgs", "rounds", "success")

	for _, n := range ns {
		f := n/2 - 1
		cfg.progressf("E1: n=%d\n", n)

		// Ours, implicit and explicit agreement.
		opts := sublinear.Options{N: n, Alpha: 0.5,
			Faults: &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf}}
		agg, err := runAgreementReps(opts, 0.5, reps, cfg.SeedBase+uint64(n))
		if err != nil {
			return nil, err
		}
		agreeTbl.AddRow("this paper (implicit)", "KT0 anon", "n-log^2(n)", n, f,
			agg.Messages.Mean, agg.Bits.Mean, agg.Rounds.Mean, rate(agg.Success, reps))

		opts.Explicit = true
		aggE, err := runAgreementReps(opts, 0.5, reps, cfg.SeedBase+uint64(n))
		if err != nil {
			return nil, err
		}
		agreeTbl.AddRow("this paper (explicit)", "KT0 anon", "n-log^2(n)", n, f,
			aggE.Messages.Mean, aggE.Bits.Mean, aggE.Rounds.Mean, rate(aggE.Success, reps))

		// GK-style and FloodSet baselines under the same adversary family.
		var gkAgg, fsAgg baselineAgg
		for r := 0; r < reps; r++ {
			seed := cfg.SeedBase + uint64(n) + uint64(r)*104729
			inputs := sublinear.RandomInputs(n, 0.5, seed^0xbeef)
			src := rng.New(seed ^ 0xadd5)
			gk, err := baseline.RunGK(baseline.GKConfig{N: n, Seed: seed}, inputs,
				faultPlan(n, f, 20, src))
			if err != nil {
				return nil, err
			}
			gkAgg.add(gk)
			fs, err := baseline.RunFloodSet(baseline.FloodSetConfig{N: n, Seed: seed, F: f}, inputs,
				faultPlan(n, f, f+1, src))
			if err != nil {
				return nil, err
			}
			fsAgg.add(fs)
		}
		agreeTbl.AddRow("Gilbert-Kowalski style", "KT1", "n/2-1", n, f,
			gkAgg.meanMsgs(), gkAgg.meanBits(), gkAgg.meanRounds(), rate(gkAgg.ok, reps))
		agreeTbl.AddRow("FloodSet (classical)", "KT0 bcast", "any f", n, f,
			fsAgg.meanMsgs(), fsAgg.meanBits(), fsAgg.meanRounds(), rate(fsAgg.ok, reps))

		// Push-gossip (Chlebus–Kowalski-style expected bounds) and the
		// deterministic rotating coordinator.
		var goAgg, rotAgg baselineAgg
		for r := 0; r < reps; r++ {
			seed := cfg.SeedBase + uint64(n) + uint64(r)*104729
			inputs := sublinear.RandomInputs(n, 0.5, seed^0xbeef)
			src := rng.New(seed ^ 0xadd5)
			gp, err := baseline.RunGossip(baseline.GossipConfig{N: n, Seed: seed}, inputs,
				faultPlan(n, f, 20, src))
			if err != nil {
				return nil, err
			}
			goAgg.add(gp)
			rot, err := baseline.RunRotating(baseline.RotatingConfig{N: n, Seed: seed, F: f}, inputs,
				faultPlan(n, f, f+1, src))
			if err != nil {
				return nil, err
			}
			rotAgg.add(rot)
		}
		agreeTbl.AddRow("push gossip (CK-style)", "KT0 anon", "n/2-1*", n, f,
			goAgg.meanMsgs(), goAgg.meanBits(), goAgg.meanRounds(), rate(goAgg.ok, reps))
		agreeTbl.AddRow("rotating coordinator (det.)", "KT1", "any f", n, f,
			rotAgg.meanMsgs(), rotAgg.meanBits(), rotAgg.meanRounds(), rate(rotAgg.ok, reps))

		// AMP fault-free implicit agreement.
		var ampAgg baselineAgg
		for r := 0; r < reps; r++ {
			seed := cfg.SeedBase + uint64(n) + uint64(r)*104729
			inputs := sublinear.RandomInputs(n, 0.5, seed^0xbeef)
			amp, err := baseline.RunAMP(baseline.AMPConfig{N: n, Seed: seed}, inputs)
			if err != nil {
				return nil, err
			}
			ampAgg.add(amp)
		}
		agreeTbl.AddRow("Augustine et al. (fault-free)", "KT0 anon", "0", n, 0,
			ampAgg.meanMsgs(), ampAgg.meanBits(), ampAgg.meanRounds(), rate(ampAgg.ok, reps))

		// Election comparison.
		eOpts := sublinear.Options{N: n, Alpha: 0.5,
			Faults: &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf}}
		eAgg, err := runElectionReps(eOpts, reps, cfg.SeedBase+uint64(n))
		if err != nil {
			return nil, err
		}
		electTbl.AddRow("this paper (implicit)", "KT0 anon", "n-log^2(n)", n, f,
			eAgg.Messages.Mean, eAgg.Rounds.Mean, rate(eAgg.Success, reps))

		var kAgg, apAgg baselineAgg
		for r := 0; r < reps; r++ {
			seed := cfg.SeedBase + uint64(n) + uint64(r)*104729
			kt, err := baseline.RunKutten(baseline.KuttenConfig{N: n, Seed: seed})
			if err != nil {
				return nil, err
			}
			kAgg.add(kt)
			src := rng.New(seed ^ 0xadd5)
			ap, err := baseline.RunAllPairs(baseline.AllPairsConfig{N: n, Seed: seed, F: f},
				faultPlan(n, f, f+1, src))
			if err != nil {
				return nil, err
			}
			apAgg.add(ap)
		}
		electTbl.AddRow("Kutten et al. (fault-free)", "KT0 anon", "0", n, 0,
			kAgg.meanMsgs(), kAgg.meanRounds(), rate(kAgg.ok, reps))
		electTbl.AddRow("all-pairs flooding", "KT0 bcast", "any f", n, f,
			apAgg.meanMsgs(), apAgg.meanRounds(), rate(apAgg.ok, reps))
	}
	rep.Tables = append(rep.Tables, agreeTbl, electTbl)
	rep.notef("shape check: this paper and the fault-free sublinear baselines stay Õ(sqrt(n)); GK-style is Θ(n log n); FloodSet and all-pairs are Θ(n^2).")
	return rep, nil
}

// runE2 sweeps n at fixed alpha and fits the election message exponent
// (Theorem 4.1: Õ(sqrt n) for constant alpha).
func runE2(cfg Config) (*Report, error) {
	rep := &Report{ID: "E2", Title: "Theorem 4.1: election messages vs n (alpha = 1/2)"}
	ns := pick(cfg, []int{1024, 2048, 4096, 8192, 16384}, []int{512, 1024, 2048})
	reps := pick(cfg, 5, 2)
	tbl := NewTable("Leader election, alpha=1/2, f=n/2 random crashes (DropHalf)",
		"n", "msgs(mean)", "msgs(p90)", "bits(mean)", "rounds", "success", "msgs/n", "msgs/sqrt(n)")
	var xs, ys []float64
	for _, n := range ns {
		cfg.progressf("E2: n=%d\n", n)
		opts := sublinear.Options{N: n, Alpha: 0.5,
			Faults: &sublinear.FaultModel{Faulty: n / 2, Policy: sublinear.DropHalf}}
		agg, err := runElectionReps(opts, reps, cfg.SeedBase+uint64(n)*31)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(n, agg.Messages.Mean, agg.Messages.P90, agg.Bits.Mean, agg.Rounds.Mean,
			rate(agg.Success, reps),
			agg.Messages.Mean/float64(n), agg.Messages.Mean/sqrtF(n))
		xs = append(xs, float64(n))
		ys = append(ys, agg.Messages.Mean)
	}
	rep.Tables = append(rep.Tables, tbl)
	labels := make([]string, len(ns))
	for i, n := range ns {
		labels[i] = fmt.Sprintf("n=%d", n)
	}
	rep.figure("figure: election messages vs n (log scale)", true, labels, ys)
	if fit, err := stats.LogLogSlope(xs, ys); err == nil {
		rep.notef("log-log slope of messages vs n: %.3f (R^2=%.3f); theory: 0.5 plus polylog drift — sublinear iff < 1.", fit.Slope, fit.R2)
	}
	return rep, nil
}

// runE3 sweeps alpha at fixed n and fits the election message exponent in
// 1/alpha (Theorem 4.1: O(sqrt(n) log^{5/2} n / alpha^{5/2})).
func runE3(cfg Config) (*Report, error) {
	rep := &Report{ID: "E3", Title: "Theorem 4.1: election messages vs alpha"}
	n := pick(cfg, 2048, 512)
	alphas := pick(cfg, []float64{1, 0.5, 0.25, 0.125}, []float64{1, 0.5, 0.25})
	reps := pick(cfg, 3, 2)
	tbl := NewTable(fmt.Sprintf("Leader election, n=%d, f=(1-alpha)n random crashes (DropHalf)", n),
		"alpha", "f", "msgs(mean)", "rounds", "success")
	var xs, ys []float64
	for _, alpha := range alphas {
		cfg.progressf("E3: alpha=%v\n", alpha)
		f := int((1 - alpha) * float64(n))
		opts := sublinear.Options{N: n, Alpha: alpha}
		if f > 0 {
			opts.Faults = &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf}
		}
		agg, err := runElectionReps(opts, reps, cfg.SeedBase+uint64(alpha*1024))
		if err != nil {
			return nil, err
		}
		tbl.AddRow(alpha, f, agg.Messages.Mean, agg.Rounds.Mean, rate(agg.Success, reps))
		xs = append(xs, 1/alpha)
		ys = append(ys, agg.Messages.Mean)
	}
	rep.Tables = append(rep.Tables, tbl)
	labels := make([]string, len(alphas))
	for i, a := range alphas {
		labels[i] = fmt.Sprintf("alpha=%v", a)
	}
	rep.figure("figure: election messages vs alpha (log scale)", true, labels, ys)
	if fit, err := stats.LogLogSlope(xs, ys); err == nil {
		rep.notef("log-log slope of messages vs 1/alpha: %.3f (R^2=%.3f); theory: between 3/2 (benign constant) and 5/2 (worst-case bound).", fit.Slope, fit.R2)
	}
	return rep, nil
}

// runE4 validates the safety side of Theorem 4.1: exactly one leader, and
// against the footnote-3 adversary (all faulty nodes crash after the
// election) the elected leader is non-faulty with probability >= alpha.
func runE4(cfg Config) (*Report, error) {
	rep := &Report{ID: "E4", Title: "Theorem 4.1: leader uniqueness and non-faulty probability"}
	n := pick(cfg, 2048, 512)
	reps := pick(cfg, 40, 10)
	alpha := 0.5
	f := n / 2
	tbl := NewTable(fmt.Sprintf("n=%d, alpha=%v, f=%d", n, alpha, f),
		"adversary", "success", "leader non-faulty", "leader never crashed")

	late := sublinear.Options{N: n, Alpha: alpha,
		Faults: &sublinear.FaultModel{Faulty: f, CrashAfterElection: true}}
	aggLate, err := runElectionReps(late, reps, cfg.SeedBase+11)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("crash after election (footnote 3)", rate(aggLate.Success, reps),
		rate(aggLate.LeaderNonFaulty, max(aggLate.Success, 1)),
		rate(aggLate.LeaderLive, max(aggLate.Success, 1)))

	mid := sublinear.Options{N: n, Alpha: alpha,
		Faults: &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf}}
	aggMid, err := runElectionReps(mid, reps, cfg.SeedBase+13)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("random mid-run crashes (DropHalf)", rate(aggMid.Success, reps),
		rate(aggMid.LeaderNonFaulty, max(aggMid.Success, 1)),
		rate(aggMid.LeaderLive, max(aggMid.Success, 1)))

	hunter := sublinear.Options{N: n, Alpha: alpha,
		Faults: &sublinear.FaultModel{Faulty: f, Hunter: true, Policy: sublinear.DropHalf}}
	aggHunt, err := runElectionReps(hunter, reps, cfg.SeedBase+17)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("adaptive committee hunter (DropHalf)", rate(aggHunt.Success, reps),
		rate(aggHunt.LeaderNonFaulty, max(aggHunt.Success, 1)),
		rate(aggHunt.LeaderLive, max(aggHunt.Success, 1)))

	rep.Tables = append(rep.Tables, tbl)
	rep.notef("theory: under the footnote-3 adversary P[leader non-faulty] ~ 1-f/n = alpha = %.2f; uniqueness holds w.h.p. under every adversary.", alpha)
	if fails := topFailures(append(aggLate.Failures, append(aggMid.Failures, aggHunt.Failures...)...)); fails != "" {
		rep.notef("failures: %s", fails)
	}
	return rep, nil
}

// runE5 is E2/E3 for agreement (Theorem 5.1).
func runE5(cfg Config) (*Report, error) {
	rep := &Report{ID: "E5", Title: "Theorem 5.1: agreement message scaling"}
	ns := pick(cfg, []int{1024, 2048, 4096, 8192, 16384}, []int{512, 1024, 2048})
	reps := pick(cfg, 5, 2)
	tblN := NewTable("Agreement vs n, alpha=1/2, f=n/2 random crashes (DropHalf), P[1]=1/2",
		"n", "msgs(mean)", "bits(mean)", "rounds", "success", "msgs/sqrt(n)")
	var xs, ys []float64
	for _, n := range ns {
		cfg.progressf("E5: n=%d\n", n)
		opts := sublinear.Options{N: n, Alpha: 0.5,
			Faults: &sublinear.FaultModel{Faulty: n / 2, Policy: sublinear.DropHalf}}
		agg, err := runAgreementReps(opts, 0.5, reps, cfg.SeedBase+uint64(n)*37)
		if err != nil {
			return nil, err
		}
		tblN.AddRow(n, agg.Messages.Mean, agg.Bits.Mean, agg.Rounds.Mean,
			rate(agg.Success, reps), agg.Messages.Mean/sqrtF(n))
		xs = append(xs, float64(n))
		ys = append(ys, agg.Messages.Mean)
	}
	rep.Tables = append(rep.Tables, tblN)
	nLabels := make([]string, len(ns))
	for i, n := range ns {
		nLabels[i] = fmt.Sprintf("n=%d", n)
	}
	rep.figure("figure: agreement messages vs n (log scale)", true, nLabels, ys)
	if fit, err := stats.LogLogSlope(xs, ys); err == nil {
		rep.notef("log-log slope of messages vs n: %.3f (R^2=%.3f); theory 0.5 plus polylog drift.", fit.Slope, fit.R2)
	}

	nA := pick(cfg, 2048, 512)
	alphas := pick(cfg, []float64{1, 0.5, 0.25, 0.125}, []float64{1, 0.5, 0.25})
	tblA := NewTable(fmt.Sprintf("Agreement vs alpha, n=%d, f=(1-alpha)n random crashes (DropHalf)", nA),
		"alpha", "f", "msgs(mean)", "rounds", "success")
	var xa, ya []float64
	for _, alpha := range alphas {
		cfg.progressf("E5: alpha=%v\n", alpha)
		f := int((1 - alpha) * float64(nA))
		opts := sublinear.Options{N: nA, Alpha: alpha}
		if f > 0 {
			opts.Faults = &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf}
		}
		agg, err := runAgreementReps(opts, 0.5, reps, cfg.SeedBase+uint64(alpha*2048))
		if err != nil {
			return nil, err
		}
		tblA.AddRow(alpha, f, agg.Messages.Mean, agg.Rounds.Mean, rate(agg.Success, reps))
		xa = append(xa, 1/alpha)
		ya = append(ya, agg.Messages.Mean)
	}
	rep.Tables = append(rep.Tables, tblA)
	if fit, err := stats.LogLogSlope(xa, ya); err == nil {
		rep.notef("log-log slope of messages vs 1/alpha: %.3f (R^2=%.3f); theory 3/2.", fit.Slope, fit.R2)
	}
	return rep, nil
}

func sqrtF(n int) float64 { return math.Sqrt(float64(n)) }

// baselineAgg accumulates baseline.Result runs for one table row.
type baselineAgg struct {
	msgs, bits, rounds float64
	ok, runs           int
}

func (a *baselineAgg) add(r *baseline.Result) {
	a.runs++
	a.msgs += float64(r.Counters.Messages())
	a.bits += float64(r.Counters.Bits())
	a.rounds += float64(r.Rounds)
	if r.Success {
		a.ok++
	}
}

func (a *baselineAgg) meanMsgs() float64   { return a.msgs / float64(max(a.runs, 1)) }
func (a *baselineAgg) meanBits() float64   { return a.bits / float64(max(a.runs, 1)) }
func (a *baselineAgg) meanRounds() float64 { return a.rounds / float64(max(a.runs, 1)) }

// faultPlan builds the standard random-crash adversary used across
// experiments. Experiment parameters are static and known-good, so the
// constructor cannot fail.
func faultPlan(n, f, horizon int, src *rng.Source) *fault.Plan {
	return fault.Must(fault.NewRandomPlan(n, f, horizon, fault.DropHalf, src))
}
