package experiment

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("caption here", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("a-very-long-name", 2)
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "caption here" {
		t.Errorf("caption line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line: %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator line: %q", lines[2])
	}
	// Columns align: "value" column starts at the same offset everywhere.
	head := strings.Index(lines[1], "value")
	row1 := strings.Index(lines[3], "1.500")
	if head != row1 {
		t.Errorf("misaligned columns: header@%d row@%d\n%s", head, row1, out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x,y", `quote"d`)
	tbl.AddRow(1, 2)
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"quote\"\"d\"\n1,2\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{1234567, "1.23e+06"},
		{0.5, "0.500"},
		{0.001, "0.0010"},
	}
	for _, tt := range tests {
		if got := formatFloat(tt.in); got != tt.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registered experiments = %d, want 14", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if seen[r.ID] {
			t.Errorf("duplicate ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil || r.Title == "" {
			t.Errorf("experiment %s incomplete", r.ID)
		}
		got, ok := Find(r.ID)
		if !ok || got.ID != r.ID {
			t.Errorf("Find(%s) failed", r.ID)
		}
	}
	if _, ok := Find("E99"); ok {
		t.Error("Find accepted unknown ID")
	}
}

func TestReportRender(t *testing.T) {
	rep := &Report{ID: "EX", Title: "demo"}
	tbl := NewTable("t", "c")
	tbl.AddRow("v")
	rep.Tables = append(rep.Tables, tbl)
	rep.notef("a note %d", 7)
	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== EX: demo ==", "note: a note 7", "v"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRateAndFailureHelpers(t *testing.T) {
	s := rate(3, 4)
	if !strings.Contains(s, "3/4") || !strings.Contains(s, "0.75") {
		t.Errorf("rate: %q", s)
	}
	if topFailures(nil) != "" {
		t.Error("no failures should render empty")
	}
	got := topFailures([]string{"a", "b", "a", "a", "c", "b"})
	if !strings.Contains(got, "a x3") || !strings.Contains(got, "b x2") {
		t.Errorf("topFailures: %q", got)
	}
	if strings.Contains(got, "c") {
		t.Errorf("topFailures should keep only the top two: %q", got)
	}
}

// A full (quick) experiment exercises the harness end to end; E10 is the
// cheapest one that touches elections, tuning overrides, and both
// engines.
func TestRunQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment still runs full elections")
	}
	rep, err := runE10(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 5 {
		t.Fatalf("E10 produced %d tables, want 5", len(rep.Tables))
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("E10 reported: %s", n)
		}
	}
	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "true") {
		t.Error("engine equivalence row missing")
	}
}
