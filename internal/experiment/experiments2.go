package experiment

import (
	"fmt"
	"math"
	"reflect"
	"time"

	"sublinear"
	"sublinear/internal/cloud"
	"sublinear/internal/stats"
)

func init() {
	Register(Runner{"E6", "Theorems 4.2/5.2: message starvation and influence clouds", runE6})
	Register(Runner{"E7", "Corollaries 1/3: round complexity", runE7})
	Register(Runner{"E8", "Resilience frontier f = n - log^2 n", runE8})
	Register(Runner{"E9", "Implicit-to-explicit extension overhead", runE9})
	Register(Runner{"E10", "Ablations: constants, iteration budget, engines", runE10})
}

// runE6 is the lower-bound experiment (Theorems 4.2 and 5.2): starve the
// protocols of messages by shrinking the referee sample and watch success
// probability collapse, while the influence-cloud analysis shows the
// mechanism the proofs use — disjoint clouds that can decide
// independently.
func runE6(cfg Config) (*Report, error) {
	rep := &Report{ID: "E6", Title: "Theorems 4.2/5.2: message starvation and influence clouds"}
	n := pick(cfg, 2048, 512)
	reps := pick(cfg, 30, 8)
	factors := pick(cfg,
		[]float64{2, 1, 0.5, 0.25, 0.125, 0.0625},
		[]float64{2, 0.5, 0.125})
	alpha := 0.5
	f := n / 2

	agreeTbl := NewTable(fmt.Sprintf("Agreement, n=%d, alpha=%v, f=%d random crashes (DropHalf); committee and referee constants scaled by s", n, alpha, f),
		"s", "msgs(mean)", "success", "initiators", "disjoint clouds", "smallest cloud")
	for _, s := range factors {
		cfg.progressf("E6: agreement s=%v\n", s)
		opts := sublinear.Options{
			N: n, Alpha: alpha,
			// Starve the whole committee structure: fewer candidates
			// (initiators) and fewer referees per candidate, which is
			// what o(sqrt(n)/alpha^{3/2}) total messages forces.
			Tuning: sublinear.Tuning{CandidateFactor: 6 * s, RefereeFactor: 2 * s},
			Faults: &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf},
			Record: true,
		}
		var (
			msgs                        []float64
			ok                          int
			inits, disjoint, smallCloud float64
			cloudRuns                   int
		)
		for r := 0; r < reps; r++ {
			opts.Seed = cfg.SeedBase + uint64(r)*6151 + uint64(s*4096)
			inputs := sublinear.RandomInputs(n, 0.5, opts.Seed^0xfeed)
			res, err := sublinear.Agree(opts, inputs)
			if err != nil {
				return nil, err
			}
			msgs = append(msgs, float64(res.Counters.Messages()))
			if res.Eval.Success {
				ok++
			}
			if r < 5 && res.Trace != nil {
				an := cloud.Analyze(res.Trace)
				inits += float64(len(an.Initiators))
				disjoint += float64(an.DisjointClouds)
				smallCloud += float64(an.SmallestCloud)
				cloudRuns++
			}
		}
		div := float64(max(cloudRuns, 1))
		agreeTbl.AddRow(s, stats.Summarize(msgs).Mean, rate(ok, reps),
			inits/div, disjoint/div, smallCloud/div)
	}
	rep.Tables = append(rep.Tables, agreeTbl)

	electTbl := NewTable(fmt.Sprintf("Leader election, n=%d, alpha=%v, f=%d; committee and referee constants scaled by s", n, alpha, f),
		"s", "msgs(mean)", "success")
	electReps := pick(cfg, 10, 4)
	electSuccess := make([]float64, 0, len(factors))
	for _, s := range factors {
		cfg.progressf("E6: election s=%v\n", s)
		opts := sublinear.Options{
			N: n, Alpha: alpha,
			Tuning: sublinear.Tuning{CandidateFactor: 6 * s, RefereeFactor: 2 * s},
			Faults: &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf},
		}
		agg, err := runElectionReps(opts, electReps, cfg.SeedBase+uint64(s*8192))
		if err != nil {
			return nil, err
		}
		electTbl.AddRow(s, agg.Messages.Mean, rate(agg.Success, electReps))
		electSuccess = append(electSuccess, float64(agg.Success)/float64(electReps))
	}
	rep.Tables = append(rep.Tables, electTbl)
	sLabels := make([]string, len(factors))
	for i, s := range factors {
		sLabels[i] = fmt.Sprintf("s=%v", s)
	}
	rep.figure("figure: election success rate under message starvation", false, sLabels, electSuccess)
	rep.notef("theory: below ~Omega(sqrt(n)/alpha^{3/2}) messages the pairwise common non-faulty referee property (Lemma 3) breaks; disjoint influence clouds appear and success probability falls away from 1.")
	return rep, nil
}

// runE7 validates the round complexity (Corollaries 1 and 3): for
// constant alpha both protocols finish in O(log n) rounds. Measured with
// EarlyStop so the observed rounds reflect convergence, not the fixed
// worst-case schedule.
func runE7(cfg Config) (*Report, error) {
	rep := &Report{ID: "E7", Title: "Corollaries 1/3: round complexity at constant alpha"}
	ns := pick(cfg, []int{512, 1024, 2048, 4096, 8192}, []int{256, 512, 1024})
	reps := pick(cfg, 3, 2)
	tbl := NewTable("alpha=1/2, f=n/4 random crashes (DropHalf), EarlyStop on",
		"n", "log2(n)", "election rounds", "agreement rounds", "election budget")
	var lx, ey, ay []float64
	for _, n := range ns {
		cfg.progressf("E7: n=%d\n", n)
		opts := sublinear.Options{N: n, Alpha: 0.5,
			Tuning: sublinear.Tuning{EarlyStop: true},
			Faults: &sublinear.FaultModel{Faulty: n / 4, Policy: sublinear.DropHalf}}
		eAgg, err := runElectionReps(opts, reps, cfg.SeedBase+uint64(n)*41)
		if err != nil {
			return nil, err
		}
		aAgg, err := runAgreementReps(opts, 0.5, reps, cfg.SeedBase+uint64(n)*43)
		if err != nil {
			return nil, err
		}
		budget := float64(0)
		if d, err := sublinear.Describe(sublinear.Tuning{}, n, 0.5); err == nil {
			budget = float64(d.ElectionRounds)
		}
		log2n := math.Log2(float64(n))
		tbl.AddRow(n, log2n, eAgg.Rounds.Mean, aAgg.Rounds.Mean, budget)
		lx = append(lx, log2n)
		ey = append(ey, eAgg.Rounds.Mean)
		ay = append(ay, aAgg.Rounds.Mean)
	}
	rep.Tables = append(rep.Tables, tbl)
	if fit, err := stats.OLS(lx, ey); err == nil {
		rep.notef("election rounds vs log2(n): slope %.2f, R^2=%.3f — linear in log n as Corollary 1 requires (the pre-processing window is ~6 ln(n)/alpha rounds).", fit.Slope, fit.R2)
	}
	if fit, err := stats.OLS(lx, ay); err == nil {
		rep.notef("agreement rounds vs log2(n): slope %.2f, R^2=%.3f — observed rounds are O(1) here because with dense zeros the 0 spreads in two hops; the paper's O(log n/alpha) budget is the worst case.", fit.Slope, fit.R2)
	}
	return rep, nil
}

// runE8 pushes resilience to the paper's frontier f = n - log^2 n
// (alpha = log^2 n / n) and checks both protocols still succeed. Message
// counts here exceed n: the paper's sublinearity needs
// alpha > log n / n^{1/5} (election) resp. log n / n^{1/3} (agreement),
// which the note records.
func runE8(cfg Config) (*Report, error) {
	rep := &Report{ID: "E8", Title: "Resilience frontier f = n - log^2 n"}
	ns := pick(cfg, []int{256, 512}, []int{128})
	reps := pick(cfg, 10, 3)
	tbl := NewTable("alpha = log^2(n)/n (maximum resilience), random crashes (DropHalf)",
		"n", "alpha", "f", "protocol", "msgs(mean)", "msgs/n", "success")
	for _, n := range ns {
		alpha := sublinear.MinimumAlpha(n)
		f := int((1 - alpha) * float64(n))
		cfg.progressf("E8: n=%d alpha=%.4f f=%d\n", n, alpha, f)
		opts := sublinear.Options{N: n, Alpha: alpha,
			Faults: &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf}}
		eAgg, err := runElectionReps(opts, reps, cfg.SeedBase+uint64(n)*47)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(n, alpha, f, "election", eAgg.Messages.Mean,
			eAgg.Messages.Mean/float64(n), rate(eAgg.Success, reps))
		aAgg, err := runAgreementReps(opts, 0.5, reps, cfg.SeedBase+uint64(n)*53)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(n, alpha, f, "agreement", aAgg.Messages.Mean,
			aAgg.Messages.Mean/float64(n), rate(aAgg.Success, reps))
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.notef("at the frontier the protocols remain correct but are no longer sublinear — exactly the trade-off of Theorems 4.1/5.1 (sublinearity requires alpha > log n/n^{1/5} resp. log n/n^{1/3}).")
	return rep, nil
}

// runE9 measures the implicit-to-explicit extension: O(n log n / alpha)
// extra messages and O(1) extra rounds (Theorems 4.1/5.1).
func runE9(cfg Config) (*Report, error) {
	rep := &Report{ID: "E9", Title: "Implicit-to-explicit extension overhead"}
	ns := pick(cfg, []int{1024, 4096}, []int{512})
	reps := pick(cfg, 5, 2)
	tbl := NewTable("alpha=1/2, f=n/2 random crashes (DropHalf)",
		"n", "protocol", "implicit msgs", "explicit msgs", "overhead", "overhead/n", "explicit rounds - implicit rounds")
	for _, n := range ns {
		cfg.progressf("E9: n=%d\n", n)
		base := sublinear.Options{N: n, Alpha: 0.5,
			Faults: &sublinear.FaultModel{Faulty: n / 2, Policy: sublinear.DropHalf}}
		expl := base
		expl.Explicit = true

		eImp, err := runElectionReps(base, reps, cfg.SeedBase+uint64(n)*59)
		if err != nil {
			return nil, err
		}
		eExp, err := runElectionReps(expl, reps, cfg.SeedBase+uint64(n)*59)
		if err != nil {
			return nil, err
		}
		over := eExp.Messages.Mean - eImp.Messages.Mean
		tbl.AddRow(n, "election", eImp.Messages.Mean, eExp.Messages.Mean, over,
			over/float64(n), eExp.Rounds.Mean-eImp.Rounds.Mean)

		aImp, err := runAgreementReps(base, 0.5, reps, cfg.SeedBase+uint64(n)*61)
		if err != nil {
			return nil, err
		}
		aExp, err := runAgreementReps(expl, 0.5, reps, cfg.SeedBase+uint64(n)*61)
		if err != nil {
			return nil, err
		}
		overA := aExp.Messages.Mean - aImp.Messages.Mean
		tbl.AddRow(n, "agreement", aImp.Messages.Mean, aExp.Messages.Mean, overA,
			overA/float64(n), aExp.Rounds.Mean-aImp.Rounds.Mean)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.notef("theory: overhead is |C| * (n-1) ~ (6 log n / alpha) * n messages in O(1) extra rounds.")
	return rep, nil
}

// runE10 runs the ablations DESIGN.md calls out: the committee constants,
// the iteration budget under the adaptive hunter, and the sequential vs
// concurrent engine equivalence.
func runE10(cfg Config) (*Report, error) {
	rep := &Report{ID: "E10", Title: "Ablations: constants, iteration budget, engines"}
	n := pick(cfg, 1024, 256)
	reps := pick(cfg, 10, 4)
	alpha := 0.5
	f := n / 2

	candTbl := NewTable(fmt.Sprintf("CandidateFactor ablation (paper: 6); n=%d, f=%d", n, f),
		"candidate factor", "msgs(mean)", "success")
	for _, cf := range []float64{1, 3, 6, 12} {
		opts := sublinear.Options{N: n, Alpha: alpha,
			Tuning: sublinear.Tuning{CandidateFactor: cf},
			Faults: &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf}}
		agg, err := runElectionReps(opts, reps, cfg.SeedBase+uint64(cf*64))
		if err != nil {
			return nil, err
		}
		candTbl.AddRow(cf, agg.Messages.Mean, rate(agg.Success, reps))
	}
	rep.Tables = append(rep.Tables, candTbl)

	refTbl := NewTable(fmt.Sprintf("RefereeFactor ablation (paper: 2); n=%d, f=%d", n, f),
		"referee factor", "msgs(mean)", "success")
	for _, rf := range []float64{0.5, 1, 2, 3} {
		opts := sublinear.Options{N: n, Alpha: alpha,
			Tuning: sublinear.Tuning{RefereeFactor: rf},
			Faults: &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf}}
		agg, err := runElectionReps(opts, reps, cfg.SeedBase+uint64(rf*128))
		if err != nil {
			return nil, err
		}
		refTbl.AddRow(rf, agg.Messages.Mean, rate(agg.Success, reps))
	}
	rep.Tables = append(rep.Tables, refTbl)

	iterTbl := NewTable(fmt.Sprintf("IterationFactor ablation under the adaptive hunter; n=%d, f=%d", n, f),
		"iteration factor", "rounds(mean)", "success")
	for _, itf := range []float64{2, 4, 8} {
		opts := sublinear.Options{N: n, Alpha: alpha,
			Tuning: sublinear.Tuning{IterationFactor: itf},
			Faults: &sublinear.FaultModel{Faulty: f, Hunter: true}}
		agg, err := runElectionReps(opts, reps, cfg.SeedBase+uint64(itf*256))
		if err != nil {
			return nil, err
		}
		iterTbl.AddRow(itf, agg.Rounds.Mean, rate(agg.Success, reps))
	}
	rep.Tables = append(rep.Tables, iterTbl)

	// Protocol-activity profile: what the committee actually did, per
	// adversary (mean per successful run, summed over candidates).
	statTbl := NewTable(fmt.Sprintf("Committee activity; n=%d, f=%d, 5 runs each", n, f),
		"adversary", "proposals", "timeouts", "echoes", "mean rankList", "relays/referee")
	for _, sc := range []struct {
		name string
		fm   sublinear.FaultModel
	}{
		{"none", sublinear.FaultModel{}},
		{"random DropHalf", sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf}},
		{"hunter DropAll", sublinear.FaultModel{Faulty: f, Hunter: true, Policy: sublinear.DropAll}},
	} {
		var proposals, timeouts, echoes, ranks, relays, cands, referees float64
		const statReps = 5
		for r := 0; r < statReps; r++ {
			opts := sublinear.Options{N: n, Alpha: alpha, Seed: cfg.SeedBase + 300 + uint64(r)}
			if sc.fm.Faulty > 0 {
				fm := sc.fm
				opts.Faults = &fm
			}
			res, err := sublinear.Elect(opts)
			if err != nil {
				return nil, err
			}
			for _, o := range res.Outputs {
				if o.IsCandidate {
					cands++
					proposals += float64(o.Stats.Proposals)
					timeouts += float64(o.Stats.Timeouts)
					echoes += float64(o.Stats.Echoes)
					ranks += float64(o.Stats.RanksLearned)
				}
				if o.Stats.RefereeFor > 0 {
					referees++
					relays += float64(o.Stats.RelaysSent)
				}
			}
		}
		statTbl.AddRow(sc.name, proposals/statReps, timeouts/statReps, echoes/statReps,
			ranks/max(cands, 1), relays/max(referees, 1))
	}
	rep.Tables = append(rep.Tables, statTbl)

	// Engine equivalence: the concurrent engine must produce the exact
	// same outputs as the sequential one for the same seed.
	engTbl := NewTable(fmt.Sprintf("Engine comparison; n=%d, f=%d, one election run", n, f),
		"engine", "wall time", "identical outputs")
	seq := sublinear.Options{N: n, Alpha: alpha, Seed: cfg.SeedBase + 99,
		Faults: &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf}}
	par := seq
	par.Concurrent = true
	t0 := time.Now()
	rSeq, err := sublinear.Elect(seq)
	if err != nil {
		return nil, err
	}
	dSeq := time.Since(t0)
	t1 := time.Now()
	rPar, err := sublinear.Elect(par)
	if err != nil {
		return nil, err
	}
	dPar := time.Since(t1)
	act := seq
	act.Actors = true
	t2 := time.Now()
	rAct, err := sublinear.Elect(act)
	if err != nil {
		return nil, err
	}
	dAct := time.Since(t2)
	samePar := reflect.DeepEqual(rSeq.Outputs, rPar.Outputs) &&
		reflect.DeepEqual(rSeq.CrashedAt, rPar.CrashedAt)
	sameAct := reflect.DeepEqual(rSeq.Outputs, rAct.Outputs) &&
		reflect.DeepEqual(rSeq.CrashedAt, rAct.CrashedAt)
	engTbl.AddRow("sequential", dSeq.String(), "-")
	engTbl.AddRow("parallel workers", dPar.String(), fmt.Sprintf("%v", samePar))
	engTbl.AddRow("goroutine-per-node actors", dAct.String(), fmt.Sprintf("%v", sameAct))
	rep.Tables = append(rep.Tables, engTbl)
	if !samePar || !sameAct {
		rep.notef("WARNING: engines diverged — determinism bug.")
	}
	return rep, nil
}
