package experiment

import (
	"fmt"

	"sublinear/internal/core"
)

func init() {
	Register(Runner{"E11", "Open problem 3: Byzantine non-resistance", runE11})
}

// runE11 is the negative half of the paper's open problem 3 ("whether a
// sub-linear message bound agreement protocol is possible in the presence
// of Byzantine node failure"): the paper's crash-fault algorithms, run
// unchanged against actively lying nodes, lose their guarantees to a
// single Byzantine participant. Election: one hijacker forging the
// maximum rank steals every election, collapsing P[leader non-faulty]
// from ~alpha to ~0. Agreement: one poisoner injecting an unheld 0
// violates validity in every run.
func runE11(cfg Config) (*Report, error) {
	rep := &Report{ID: "E11", Title: "Open problem 3: Byzantine non-resistance of the crash-fault protocols"}
	n := pick(cfg, 1024, 256)
	reps := pick(cfg, 20, 5)
	alpha := 0.5

	tbl := NewTable(fmt.Sprintf("n=%d, alpha=%v, ONE Byzantine node, no crash faults", n, alpha),
		"protocol", "attack", "runs", "attack succeeded", "honest run (0 byz) baseline")

	hijacks := 0
	for r := 0; r < reps; r++ {
		res, err := core.RunElectionWithByzantine(core.RunConfig{
			N: n, Alpha: alpha, Seed: cfg.SeedBase + uint64(r)*131,
		}, 1)
		if err != nil {
			return nil, err
		}
		if res.Hijacked {
			hijacks++
		}
	}
	// Baseline: without Byzantine nodes the adversary's only lever is
	// footnote 3, P[leader faulty] ~ f/n; with one faulty node that is
	// 1/n.
	tbl.AddRow("leader election", "max-rank hijacker", reps, rate(hijacks, reps),
		fmt.Sprintf("P[adversary leads] ~ 1/n = %.4f", 1/float64(n)))

	poisoned := 0
	for r := 0; r < reps; r++ {
		res, err := core.RunAgreementWithByzantine(core.RunConfig{
			N: n, Alpha: alpha, Seed: cfg.SeedBase + uint64(r)*137,
		}, 1)
		if err != nil {
			return nil, err
		}
		if res.ValidityViolated {
			poisoned++
		}
	}
	tbl.AddRow("agreement", "unheld-zero poisoner", reps, rate(poisoned, reps),
		"validity violations: 0 (crash faults cannot forge values)")

	rep.Tables = append(rep.Tables, tbl)
	rep.notef("the crash-fault algorithms have zero Byzantine slack: ranks and bits are taken on faith, so one forger defeats Theorem 4.1's leader guarantee and Definition 2's validity. Byzantine tolerance at sublinear message cost remains open, as the paper states.")
	return rep, nil
}
