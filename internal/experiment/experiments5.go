package experiment

import (
	"fmt"
	"math"

	"sublinear"
)

func init() {
	Register(Runner{"E13", "Implicit-agreement sampling semantics", runE13})
}

// runE13 measures the *semantics* of implicit agreement (Definition 2 and
// the discussion around it): the decision is the 0-biased agreement over
// the random committee's inputs, so a 0 held by k nodes is decided iff
// some committee member holds it. The catch probability is
// 1 - (1 - |C|/n)^k; the experiment sweeps k and compares measured catch
// rates against that prediction — quantifying exactly what the
// "sampled quorum" of examples/configflag can and cannot see.
func runE13(cfg Config) (*Report, error) {
	rep := &Report{ID: "E13", Title: "Implicit-agreement sampling semantics: zero-catch probability vs planted zeros"}
	n := pick(cfg, 2048, 512)
	reps := pick(cfg, 40, 10)
	ks := pick(cfg, []int{1, 4, 16, 64, 256}, []int{1, 8, 64})

	d, err := sublinear.Describe(sublinear.Tuning{}, n, 0.5)
	if err != nil {
		return nil, err
	}
	committee := d.ExpectedCandidates

	tbl := NewTable(fmt.Sprintf("n=%d, alpha=1/2, f=n/2 random crashes (DropHalf); k zeros planted uniformly", n),
		"k zeros", "decided 0", "success", "predicted catch 1-(1-|C|/n)^k")
	var labels []string
	var caught []float64
	for _, k := range ks {
		cfg.progressf("E13: k=%d\n", k)
		zeroWins, ok := 0, 0
		for r := 0; r < reps; r++ {
			seed := cfg.SeedBase + uint64(r)*7927 + uint64(k)
			inputs := sublinear.SparseZeros(n, k, seed^0x5eed)
			res, err := sublinear.Agree(sublinear.Options{
				N: n, Alpha: 0.5, Seed: seed,
				Faults: &sublinear.FaultModel{Faulty: n / 2, Policy: sublinear.DropHalf},
			}, inputs)
			if err != nil {
				return nil, err
			}
			if res.Eval.Success {
				ok++
				if res.Eval.Value == 0 {
					zeroWins++
				}
			}
		}
		predicted := 1 - math.Pow(1-committee/float64(n), float64(k))
		tbl.AddRow(k, rate(zeroWins, reps), rate(ok, reps), predicted)
		labels = append(labels, fmt.Sprintf("k=%d", k))
		caught = append(caught, float64(zeroWins)/float64(reps))
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.figure("figure: P[decide 0] vs planted zeros", false, labels, caught)
	rep.notef("the committee is a Theta(log n/alpha) uniform sample (E[|C|] = %.0f here): singleton zeros are caught with probability ~|C|/n = %.3f, widespread zeros w.h.p. — validity holds either way (the decision is always some node's input). This is the quantitative content of the paper's implicit relaxation.", committee, committee/float64(n))
	return rep, nil
}
