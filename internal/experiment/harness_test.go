package experiment

import (
	"strings"
	"testing"

	"sublinear"
)

func TestRunElectionReps(t *testing.T) {
	opts := sublinear.Options{N: 128, Alpha: 0.75,
		Faults: &sublinear.FaultModel{Faulty: 16, Policy: sublinear.DropHalf}}
	agg, err := runElectionReps(opts, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Reps != 4 {
		t.Fatalf("reps = %d", agg.Reps)
	}
	if agg.Messages.Count != 4 || agg.Messages.Mean <= 0 {
		t.Fatalf("message stats: %+v", agg.Messages)
	}
	if agg.Rounds.Mean <= 0 || agg.Bits.Mean <= agg.Messages.Mean {
		t.Fatalf("rounds/bits stats: %+v / %+v", agg.Rounds, agg.Bits)
	}
	if agg.Success+len(agg.Failures) != 4 {
		t.Fatalf("success %d + failures %d != reps", agg.Success, len(agg.Failures))
	}
	if agg.LeaderNonFaulty > agg.Success || agg.LeaderLive > agg.Success {
		t.Fatalf("leader counters exceed successes: %+v", agg)
	}
}

func TestRunAgreementReps(t *testing.T) {
	opts := sublinear.Options{N: 128, Alpha: 0.75}
	agg, err := runAgreementReps(opts, 0.5, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Reps != 3 || agg.Messages.Count != 3 {
		t.Fatalf("agg: %+v", agg)
	}
	if agg.Success != 3 {
		t.Fatalf("fault-free agreement failed: %v", agg.Failures)
	}
}

func TestRunRepsErrorPropagates(t *testing.T) {
	opts := sublinear.Options{N: 1, Alpha: 0.75} // invalid n
	if _, err := runElectionReps(opts, 2, 0); err == nil {
		t.Error("election error swallowed")
	}
	if _, err := runAgreementReps(opts, 0.5, 2, 0); err == nil {
		t.Error("agreement error swallowed")
	}
}

func TestRepsUseDistinctSeeds(t *testing.T) {
	// With distinct seeds the per-rep message counts almost surely vary.
	opts := sublinear.Options{N: 128, Alpha: 0.75}
	agg, err := runElectionReps(opts, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Messages.StdDev == 0 {
		t.Error("identical message counts across reps — seeds not varied?")
	}
}

func TestPickHelper(t *testing.T) {
	full, quick := []int{1, 2, 3}, []int{1}
	if got := pick(Config{}, full, quick); len(got) != 3 {
		t.Error("pick(full) wrong")
	}
	if got := pick(Config{Quick: true}, full, quick); len(got) != 1 {
		t.Error("pick(quick) wrong")
	}
}

func TestProgressWriter(t *testing.T) {
	var b strings.Builder
	cfg := Config{Progress: &b}
	cfg.progressf("hello %d\n", 5)
	if b.String() != "hello 5\n" {
		t.Errorf("progress output %q", b.String())
	}
	// nil writer must not panic.
	Config{}.progressf("ignored")
}
