// Package graphsim generalizes the synchronous crash-fault simulator of
// internal/netsim from complete networks to arbitrary connected graphs
// (the setting of the paper's open problem 2). It reuses netsim's
// Machine, Payload, Send/Delivery and Adversary contracts; the only
// difference is that node u's ports 1..Deg(u) follow the topology of an
// internal/graph.Graph instead of the complete wiring.
package graphsim

import (
	"fmt"

	"sublinear/internal/graph"
	"sublinear/internal/metrics"
	"sublinear/internal/netsim"
	"sublinear/internal/rng"
)

// Config parameterises a general-graph run.
type Config struct {
	// Graph is the topology. Required.
	Graph graph.Graph
	// Alpha is the guaranteed non-faulty fraction (Env exposure).
	Alpha float64
	// Seed derives every node's private coins.
	Seed uint64
	// MaxRounds caps the execution. Required.
	MaxRounds int
	// CongestFactor sets the per-message budget to
	// factor*ceil(log2 n) bits; zero selects 12.
	CongestFactor int
	// Strict aborts on CONGEST violations.
	Strict bool
}

// Result is the outcome of a general-graph run.
type Result struct {
	// Outputs holds each machine's Output(), indexed by node.
	Outputs []any
	// CrashedAt[u] is the crash round of node u, or 0.
	CrashedAt []int
	// Rounds is the number of rounds executed.
	Rounds int
	// Counters carries message/bit accounting.
	Counters *metrics.Counters
	// Violations holds CONGEST violations in non-strict mode.
	Violations []netsim.Violation
}

// Run executes the machines on the graph under the adversary (nil means
// fault-free).
func Run(cfg Config, machines []netsim.Machine, adv netsim.Adversary) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("graphsim: Graph is required")
	}
	n := cfg.Graph.N()
	if len(machines) != n {
		return nil, fmt.Errorf("graphsim: %d machines for n=%d", len(machines), n)
	}
	if cfg.MaxRounds < 1 {
		return nil, fmt.Errorf("graphsim: MaxRounds must be >= 1")
	}
	if adv == nil {
		adv = netsim.NoFaults{}
	}
	factor := cfg.CongestFactor
	if factor == 0 {
		factor = 12
	}
	budget := factor * ceilLog2(n)

	g := cfg.Graph
	root := rng.New(cfg.Seed)
	envs := make([]*netsim.Env, n)
	for u := 0; u < n; u++ {
		envs[u] = &netsim.Env{
			N: n, ID: u, Alpha: cfg.Alpha,
			Rand: root.Split(uint64(u)),
			Deg:  g.Degree(u),
		}
	}

	var (
		counters   metrics.Counters
		violations []netsim.Violation
		crashedAt  = make([]int, n)
		inboxes    = make([][]netsim.Delivery, n)
		nextInbox  = make([][]netsim.Delivery, n)
	)
	violate := func(u, round int, reason string) error {
		if cfg.Strict {
			return fmt.Errorf("graphsim: node %d round %d: %s", u, round, reason)
		}
		violations = append(violations, netsim.Violation{Node: u, Round: round, Reason: reason})
		return nil
	}

	rounds := 0
	for round := 1; round <= cfg.MaxRounds; round++ {
		rounds = round
		counters.BeginRound(round)
		inFlight := false
		for u := 0; u < n; u++ {
			if crashedAt[u] != 0 {
				continue
			}
			outbox := machines[u].Step(envs[u], round, inboxes[u])
			crashing := false
			if adv.Faulty(u) && adv.CrashNow(u, round, outbox) {
				crashing = true
				crashedAt[u] = round
			}
			usedPorts := make(map[int]bool, len(outbox))
			for i, s := range outbox {
				if s.Port < 1 || s.Port > g.Degree(u) {
					if err := violate(u, round, fmt.Sprintf("port %d out of range [1,%d]", s.Port, g.Degree(u))); err != nil {
						return nil, err
					}
					continue
				}
				if usedPorts[s.Port] {
					if err := violate(u, round, fmt.Sprintf("two messages on port %d", s.Port)); err != nil {
						return nil, err
					}
				}
				usedPorts[s.Port] = true
				if sz := s.Payload.Bits(n); sz > budget {
					if err := violate(u, round, fmt.Sprintf("payload %q is %d bits, budget %d", s.Payload.Kind(), sz, budget)); err != nil {
						return nil, err
					}
				}
				counters.AddKind(netsim.PayloadKindID(s.Payload), s.Payload.Bits(n))
				if crashing && !adv.DeliverOnCrash(u, round, i, s) {
					continue
				}
				v := g.Neighbor(u, s.Port)
				nextInbox[v] = append(nextInbox[v], netsim.Delivery{
					Port:    g.PortOf(v, u),
					Payload: s.Payload,
				})
			}
			if len(outbox) > 0 {
				inFlight = true
			}
		}
		inboxes, nextInbox = nextInbox, inboxes
		for u := range nextInbox {
			nextInbox[u] = nextInbox[u][:0]
		}
		if !inFlight {
			quiet := true
			for u := 0; u < n; u++ {
				if crashedAt[u] == 0 && !machines[u].Done() {
					quiet = false
					break
				}
			}
			if quiet {
				break
			}
		}
	}

	res := &Result{
		Outputs:    make([]any, n),
		CrashedAt:  crashedAt,
		Rounds:     rounds,
		Counters:   &counters,
		Violations: violations,
	}
	for u, m := range machines {
		res.Outputs[u] = m.Output()
	}
	return res, nil
}

func ceilLog2(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}
