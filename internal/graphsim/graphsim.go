// Package graphsim generalizes the synchronous crash-fault simulator of
// internal/netsim from complete networks to arbitrary connected graphs
// (the setting of the paper's open problem 2). It reuses netsim's
// Machine, Payload, Send/Delivery and Adversary contracts; the only
// difference is that node u's ports 1..Deg(u) follow the topology of an
// internal/graph.Graph instead of the complete wiring.
//
// Since internal/topo landed, this package is a compatibility facade: the
// graph is compiled to a topo.Topology and the run executes on the
// topology engine's single-worker configuration — the same delivery
// pipeline, CONGEST accounting, and digest schema as every other engine,
// instead of the per-round allocating loop that used to live here.
// Workers is pinned to 1 because this package's historical contract
// permits machines that share state across nodes (its own tests do);
// callers wanting the sharded engine use internal/topo directly.
package graphsim

import (
	"fmt"

	"sublinear/internal/graph"
	"sublinear/internal/metrics"
	"sublinear/internal/netsim"
	"sublinear/internal/topo"
)

// Config parameterises a general-graph run.
type Config struct {
	// Graph is the topology. Required.
	Graph graph.Graph
	// Alpha is the guaranteed non-faulty fraction (Env exposure).
	Alpha float64
	// Seed derives every node's private coins.
	Seed uint64
	// MaxRounds caps the execution. Required.
	MaxRounds int
	// CongestFactor sets the per-message budget to
	// factor*ceil(log2 n) bits; zero selects 12.
	CongestFactor int
	// Strict aborts on CONGEST violations.
	Strict bool
}

// Result is the outcome of a general-graph run.
type Result struct {
	// Outputs holds each machine's Output(), indexed by node.
	Outputs []any
	// CrashedAt[u] is the crash round of node u, or 0.
	CrashedAt []int
	// Rounds is the number of rounds executed.
	Rounds int
	// Counters carries message/bit accounting.
	Counters *metrics.Counters
	// Violations holds CONGEST violations in non-strict mode.
	Violations []netsim.Violation
	// Digest is the engine's execution fingerprint, in the shared
	// netsim schema (new with the topo backend; 0 never occurs).
	Digest uint64
}

// Run executes the machines on the graph under the adversary (nil means
// fault-free).
func Run(cfg Config, machines []netsim.Machine, adv netsim.Adversary) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("graphsim: Graph is required")
	}
	n := cfg.Graph.N()
	if len(machines) != n {
		return nil, fmt.Errorf("graphsim: %d machines for n=%d", len(machines), n)
	}
	if cfg.MaxRounds < 1 {
		return nil, fmt.Errorf("graphsim: MaxRounds must be >= 1")
	}
	factor := cfg.CongestFactor
	if factor == 0 {
		factor = 12
	}
	tp, err := topo.Compile(cfg.Graph)
	if err != nil {
		return nil, fmt.Errorf("graphsim: %w", err)
	}
	res, err := topo.Run(topo.Config{
		Topology:      tp,
		Alpha:         cfg.Alpha,
		Seed:          cfg.Seed,
		MaxRounds:     cfg.MaxRounds,
		CongestFactor: factor,
		Strict:        cfg.Strict,
		Workers:       1,
	}, machines, adv)
	if err != nil {
		return nil, err
	}
	return &Result{
		Outputs:    res.Outputs,
		CrashedAt:  res.CrashedAt,
		Rounds:     res.Rounds,
		Counters:   res.Counters,
		Violations: res.Violations,
		Digest:     res.Digest,
	}, nil
}
