package graphsim

import (
	"strings"
	"testing"

	"sublinear/internal/graph"
	"sublinear/internal/netsim"
)

type pl struct{ id int }

func (pl) Bits(int) int { return 4 }
func (pl) Kind() string { return "p" }

// floodMachine floods a counter along all ports once, then echoes the
// highest id it has seen back on the arrival port.
type floodMachine struct {
	origin bool
	last   int
	best   int
	seen   []int // arrival ports, for assertions
}

func (m *floodMachine) Step(env *netsim.Env, round int, inbox []netsim.Delivery) []netsim.Send {
	m.last = round
	var out []netsim.Send
	if m.origin && round == 1 {
		for p := 1; p <= env.Deg; p++ {
			out = append(out, netsim.Send{Port: p, Payload: pl{id: env.ID}})
		}
		return out
	}
	for _, d := range inbox {
		m.seen = append(m.seen, d.Port)
		if v := d.Payload.(pl).id; v > m.best {
			m.best = v
		}
	}
	return nil
}

func (m *floodMachine) Done() bool  { return true }
func (m *floodMachine) Output() any { return m.best }

func TestGraphsimDeliversAlongTopology(t *testing.T) {
	g, err := graph.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	machines := make([]netsim.Machine, 6)
	floods := make([]*floodMachine, 6)
	for u := range machines {
		fm := &floodMachine{origin: u == 3}
		floods[u] = fm
		machines[u] = fm
	}
	res, err := Run(Config{Graph: g, Alpha: 1, MaxRounds: 4}, machines, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Node 3's flood reaches exactly its two ring neighbors, 2 and 4.
	if res.Counters.Messages() != 2 {
		t.Fatalf("messages = %d, want 2 (ring degree)", res.Counters.Messages())
	}
	for u, fm := range floods {
		wantRecv := u == 2 || u == 4
		if (len(fm.seen) == 1) != wantRecv {
			t.Fatalf("node %d received %d messages", u, len(fm.seen))
		}
		if wantRecv {
			// The arrival port must lead back to node 3.
			if g.Neighbor(u, fm.seen[0]) != 3 {
				t.Fatalf("node %d arrival port %d does not lead to 3", u, fm.seen[0])
			}
		}
	}
}

func TestGraphsimEnvDegree(t *testing.T) {
	g, err := graph.Torus(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	degSeen := make([]int, g.N())
	machines := make([]netsim.Machine, g.N())
	for u := range machines {
		u := u
		machines[u] = &funcMachine{step: func(env *netsim.Env, round int, _ []netsim.Delivery) []netsim.Send {
			degSeen[u] = env.Deg
			return nil
		}}
	}
	if _, err := Run(Config{Graph: g, Alpha: 1, MaxRounds: 1}, machines, nil); err != nil {
		t.Fatal(err)
	}
	for u, d := range degSeen {
		if d != 4 {
			t.Fatalf("node %d saw Deg=%d, want 4", u, d)
		}
	}
}

type funcMachine struct {
	step func(*netsim.Env, int, []netsim.Delivery) []netsim.Send
	last int
}

func (m *funcMachine) Step(env *netsim.Env, round int, in []netsim.Delivery) []netsim.Send {
	m.last = round
	return m.step(env, round, in)
}
func (m *funcMachine) Done() bool  { return true }
func (m *funcMachine) Output() any { return nil }

func TestGraphsimPortValidation(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	machines := make([]netsim.Machine, 4)
	for u := range machines {
		machines[u] = &funcMachine{step: func(env *netsim.Env, round int, _ []netsim.Delivery) []netsim.Send {
			if env.ID == 0 && round == 1 {
				return []netsim.Send{{Port: 3, Payload: pl{}}} // degree is 2
			}
			return nil
		}}
	}
	_, err = Run(Config{Graph: g, Alpha: 1, MaxRounds: 2, Strict: true}, machines, nil)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
	// Non-strict records it instead.
	for u := range machines {
		machines[u] = &funcMachine{step: func(env *netsim.Env, round int, _ []netsim.Delivery) []netsim.Send {
			if env.ID == 0 && round == 1 {
				return []netsim.Send{{Port: 3, Payload: pl{}}}
			}
			return nil
		}}
	}
	res, err := Run(Config{Graph: g, Alpha: 1, MaxRounds: 2}, machines, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("violations: %+v", res.Violations)
	}
}

type crashAt struct{ node, round int }

func (c crashAt) Faulty(u int) bool                              { return u == c.node }
func (c crashAt) CrashNow(u, r int, _ []netsim.Send) bool        { return u == c.node && r >= c.round }
func (c crashAt) DeliverOnCrash(_, _, i int, _ netsim.Send) bool { return i == 0 }

func TestGraphsimCrashFiltering(t *testing.T) {
	g, err := graph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	machines := make([]netsim.Machine, 5)
	for u := range machines {
		machines[u] = &funcMachine{step: func(env *netsim.Env, round int, in []netsim.Delivery) []netsim.Send {
			received += len(in)
			if env.ID == 0 && round == 1 {
				out := make([]netsim.Send, env.Deg)
				for p := 1; p <= env.Deg; p++ {
					out[p-1] = netsim.Send{Port: p, Payload: pl{}}
				}
				return out
			}
			return nil
		}}
	}
	res, err := Run(Config{Graph: g, Alpha: 0.5, MaxRounds: 3}, machines, crashAt{node: 0, round: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashedAt[0] != 1 {
		t.Fatalf("CrashedAt = %v", res.CrashedAt)
	}
	// All 4 sends counted, only outbox index 0 delivered.
	if res.Counters.Messages() != 4 {
		t.Fatalf("messages = %d", res.Counters.Messages())
	}
	if received != 1 {
		t.Fatalf("received = %d, want 1", received)
	}
}

func TestGraphsimValidation(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Graph: g, MaxRounds: 1}, make([]netsim.Machine, 3), nil); err == nil {
		t.Error("machine count mismatch accepted")
	}
	if _, err := Run(Config{Graph: g}, make([]netsim.Machine, 4), nil); err == nil {
		t.Error("MaxRounds 0 accepted")
	}
	if _, err := Run(Config{MaxRounds: 1}, nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
}
