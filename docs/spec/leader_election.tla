---------------------------- MODULE leader_election ----------------------------
(***************************************************************************)
(* A TLA+ companion spec of the fail-stop synchronous round model that     *)
(* this repository simulates (internal/netsim) and exhaustively checks    *)
(* (internal/mc), specialized to flooding-based leader election.           *)
(*                                                                         *)
(* The protocol modeled is the FloodSet-style election the `floodset`     *)
(* baseline implements: every node starts knowing only its own rank,       *)
(* floods its known rank set for MaxF+1 synchronous rounds, and then       *)
(* elects itself iff its own rank is the maximum of everything it          *)
(* gathered.  The adversary may crash up to MaxF nodes; a node crashing    *)
(* in round r delivers its round-r broadcast to an adversarially chosen    *)
(* subset of peers and is silent thereafter.                               *)
(*                                                                         *)
(* Safety properties (checkable with TLC; see the MODEL CHECKING note at   *)
(* the bottom):                                                            *)
(*   LeaderUniqueness - at most one live node is elected, ever.            *)
(*   Agreement        - once the protocol terminates, all live nodes       *)
(*                      gathered exactly the same rank set.                *)
(***************************************************************************)
EXTENDS Naturals, FiniteSets

CONSTANTS
  N,     \* network size
  MaxF   \* crash budget: the adversary crashes at most MaxF nodes

ASSUME NAssumption == N \in Nat /\ N >= 2
ASSUME FAssumption == MaxF \in Nat /\ MaxF <= N - 2

Nodes == 0 .. N - 1

(***************************************************************************)
(* Ranks.  The implementation draws random ranks, unique with high        *)
(* probability; the spec models the post-collision world directly by      *)
(* using the node id as its rank.  Uniqueness is the only property of     *)
(* ranks the safety argument uses.                                         *)
(***************************************************************************)
Rank(u) == u

SetMax(S) == CHOOSE x \in S : \A y \in S : y <= x

R == MaxF + 1   \* flooding rounds: enough for one crash-free round

VARIABLES
  round,   \* 1..R while flooding; R+1 = deciding; R+2 = terminated
  alive,   \* nodes that have not crashed
  known,   \* known[u]: the set of ranks node u has gathered
  leader   \* leader[u]: TRUE iff u elected itself

vars == <<round, alive, known, leader>>

TypeOK ==
  /\ round \in 1 .. R + 2
  /\ alive \subseteq Nodes
  /\ known \in [Nodes -> SUBSET {Rank(u) : u \in Nodes}]
  /\ leader \in [Nodes -> BOOLEAN]

Init ==
  /\ round = 1
  /\ alive = Nodes
  /\ known = [u \in Nodes |-> {Rank(u)}]
  /\ leader = [u \in Nodes |-> FALSE]

(***************************************************************************)
(* One synchronous flooding round.  The adversary picks the set of nodes  *)
(* that crash mid-broadcast this round (respecting the remaining budget)  *)
(* and, for each, the subset of peers that still receive its final        *)
(* broadcast.  Survivors receive every live sender's set in full.         *)
(***************************************************************************)
CrashesSoFar == N - Cardinality(alive)

Gathered(u, crashSet, deliv) ==
  known[u]
    \cup UNION {known[v] : v \in (alive \ crashSet) \ {u}}
    \cup UNION {known[v] : v \in {w \in crashSet : u \in deliv[w]}}

Flood ==
  /\ round <= R
  /\ \E crashSet \in SUBSET alive :
       /\ CrashesSoFar + Cardinality(crashSet) <= MaxF
       /\ \E deliv \in [crashSet -> SUBSET Nodes] :
            known' = [u \in Nodes |->
                       IF u \in alive \ crashSet
                       THEN Gathered(u, crashSet, deliv)
                       ELSE known[u]]
       /\ alive' = alive \ crashSet
  /\ round' = round + 1
  /\ UNCHANGED leader

(***************************************************************************)
(* After R rounds every live node decides: elect iff own rank is the      *)
(* maximum gathered.  Ranks are unique, so agreement on the gathered set  *)
(* implies at most one node passes the test.                               *)
(***************************************************************************)
Decide ==
  /\ round = R + 1
  /\ leader' = [u \in Nodes |-> u \in alive /\ Rank(u) = SetMax(known[u])]
  /\ round' = round + 1   \* R + 2: terminated
  /\ UNCHANGED <<alive, known>>

Terminated ==
  /\ round = R + 2
  /\ UNCHANGED vars

Next == Flood \/ Decide \/ Terminated

Spec == Init /\ [][Next]_vars

--------------------------------------------------------------------------------
(***************************************************************************)
(* Safety.                                                                 *)
(***************************************************************************)

\* At most one live leader, in every reachable state.  This is the
\* leader-uniqueness oracle (internal/core) verbatim.
LeaderUniqueness == Cardinality({u \in alive : leader[u]}) <= 1

\* FloodSet agreement: once terminated, all live nodes gathered the same
\* set.  With at most MaxF crashes in R = MaxF+1 rounds, some round is
\* crash-free; after it every live node holds the union of all live sets,
\* and equal sets stay equal under further unions.
Agreement ==
  round = R + 2 => \A u, v \in alive : known[u] = known[v]

\* A node's own rank never leaves its gathered set, and gathered sets
\* only grow (the spec-level shadow of the crash-monotonicity oracle).
SelfKnowledge == \A u \in Nodes : Rank(u) \in known[u]

Safety == LeaderUniqueness /\ Agreement /\ SelfKnowledge

================================================================================

MODEL CHECKING

  TLC exhausts this spec quickly at mc-comparable sizes; the companion
  leader_election.cfg pins N = 4, MaxF = 2 and checks TypeOK and the
  three Safety invariants.  The adversary's choices (crash set, crash
  round, per-crash delivery subset) are the spec's only nondeterminism,
  mirroring mc's enumerated schedule universe.

MAPPING TO THE IMPLEMENTATION

  Spec action / object        netsim / mc counterpart
  --------------------        ----------------------------------------
  Flood (one Next step)       one synchronous netsim round: Phase 1
                              collects outboxes, Phase 2 delivers; the
                              round barrier is the atomicity boundary,
                              exactly as in the spec.
  crashSet at round r         fault.Schedule crashes with Round = r.
  deliv[w] (subset of peers)  the crash-round delivery policy of node
                              w's crash.  The spec quantifies over every
                              subset, which strictly subsumes the
                              implemented palette: DropNone ~ {}, DropAll
                              (deliver all) ~ Nodes, DropHalf ~ the
                              specific even-outbox-index subset, and
                              DropRandom ~ a seed-chosen subset.  A spec
                              property proved over all subsets therefore
                              covers every palette mc enumerates.
  R = MaxF + 1 rounds         the floodset system's registered horizon.
  known[u]                    the floodset node's gathered rank set.
  Decide / leader[u]          the node's final ELECTED output.
  LeaderUniqueness            core's leader-uniqueness oracle.
  Agreement                   core's agreement-validity oracle family.
  SelfKnowledge               the monotonicity half of the
                              crash-monotonicity oracle.

  Two deliberate gaps between spec and implementation: (1) the spec has
  no message-size accounting, so the CONGEST-budget oracle has no spec
  counterpart; (2) the spec's ranks are unique by construction, while
  the implementation's random ranks collide with negligible probability
  (the oracle excuses equal-rank collisions, per the paper's whp
  caveat).  The spec proves the model; mc (cmd/mcrun) exhaustively
  checks the executable implementation against the same invariants on
  the same bounded universes.
