// Failover loop: content-delivery networks use leader election as a
// fault-tolerance subroutine — when the coordinator of a replica group
// dies, the group elects a new one (the paper cites Akamai as the
// motivating deployment). This example runs that loop: each epoch the
// cluster elects a leader under ongoing crash faults; between epochs the
// current leader is killed, forcing a re-election. The point of the
// sublinear protocol is that each re-election costs Õ(sqrt(n)) messages,
// so frequent failover stays cheap; the example also prices the same loop
// under a naive everyone-floods election for contrast.
package main

import (
	"fmt"
	"log"

	"sublinear"
)

func main() {
	const (
		n      = 2048
		alpha  = 0.5
		epochs = 8
	)

	var totalMsgs, totalRounds int64
	elected := 0
	for epoch := 1; epoch <= epochs; epoch++ {
		// Each epoch is a fresh election among the surviving replicas;
		// the adversary keeps crashing nodes mid-protocol (the previous
		// leader's death is one of them).
		res, err := sublinear.Elect(sublinear.Options{
			N: n, Alpha: alpha, Seed: uint64(epoch) * 1009,
			Faults: &sublinear.FaultModel{
				Faulty: n / 2,
				Policy: sublinear.DropHalf,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		totalMsgs += res.Counters.Messages()
		totalRounds += int64(res.Rounds)
		status := "FAILED: " + res.Eval.Reason
		if res.Eval.Success {
			elected++
			status = fmt.Sprintf("leader node %d (rank %d)", res.Eval.LeaderNode, res.Eval.AgreedRank)
		}
		fmt.Printf("epoch %d: %s  [%d msgs, %d rounds]\n",
			epoch, status, res.Counters.Messages(), res.Rounds)
	}

	naive := int64(epochs) * int64(n) * int64(n-1) // one flood per epoch
	fmt.Printf("\n%d/%d epochs elected a leader\n", elected, epochs)
	fmt.Printf("total cost: %d messages over %d epochs (avg %d/epoch)\n",
		totalMsgs, epochs, totalMsgs/int64(epochs))
	fmt.Printf("naive all-pairs flooding would cost >= %d messages (%.1fx more)\n",
		naive, float64(naive)/float64(totalMsgs))
}
