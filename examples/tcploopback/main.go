// TCP loopback: the same fault-tolerant election, but with every protocol
// message leaving the process boundary — one real TCP socket per node,
// payloads serialized in the library's binary wire format, a hub
// enforcing the synchronous rounds. This demonstrates that the protocol
// implementation does not depend on simulator conveniences: it speaks
// bytes. The simulator and the TCP transport produce the same outcome for
// the same seed, which the example verifies.
package main

import (
	"fmt"
	"log"

	"sublinear"
)

func main() {
	const (
		n     = 64
		alpha = 0.75
		seed  = 11
	)
	faults := &sublinear.FaultModel{Faulty: 16, Policy: sublinear.DropHalf}

	sim, err := sublinear.Elect(sublinear.Options{
		N: n, Alpha: alpha, Seed: seed, Faults: faults,
	})
	if err != nil {
		log.Fatal(err)
	}
	tcp, err := sublinear.Elect(sublinear.Options{
		N: n, Alpha: alpha, Seed: seed, Faults: faults,
		TCP: true, // every message crosses a real socket
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulator: success=%v leader rank=%d messages=%d rounds=%d\n",
		sim.Eval.Success, sim.Eval.AgreedRank, sim.Counters.Messages(), sim.Rounds)
	fmt.Printf("tcp:       success=%v leader rank=%d messages=%d rounds=%d\n",
		tcp.Eval.Success, tcp.Eval.AgreedRank, tcp.Counters.Messages(), tcp.Rounds)

	if sim.Eval.AgreedRank == tcp.Eval.AgreedRank && sim.Counters.Messages() == tcp.Counters.Messages() {
		fmt.Println("\nidentical outcome over both transports — the protocol is transport-agnostic")
	} else {
		fmt.Println("\nWARNING: transports diverged")
	}
}
