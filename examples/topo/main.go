// Topology quickstart: run the topology-general election family — the
// diameter-two election and its well-connected variant — across graph
// families, sharded over three in-process simd workers and merged
// deterministically.
//
// This is the library view of `fleetctl -sweep topo-matrix -spawn 3`:
// each point names a graph family (JobSpec.Topology), the workers
// resolve it with topo.ResolveTopology and execute on the topology
// engine, and the merged report is bit-identical to an unsharded run.
package main

import (
	"context"
	"log"
	"net/http/httptest"
	"os"

	"sublinear/internal/experiment"
	"sublinear/internal/fleet"
	"sublinear/internal/simsvc"
)

func main() {
	// Three "workers": real simsvc services behind test listeners. In
	// production these are simd daemons on other machines — fleetctl
	// -spawn 3 starts them for you locally.
	var urls []string
	for i := 0; i < 3; i++ {
		svc := simsvc.New(simsvc.Config{Workers: 2})
		srv := httptest.NewServer(svc.Handler())
		defer srv.Close()
		defer svc.Close(context.Background())
		urls = append(urls, srv.URL)
	}

	// A slice of the topo-matrix sweep: the diameter-two election on its
	// native cluster graph (fault-free and under 6 random crashes) and on
	// the clique, plus the well-connected variant on an expander. f=0
	// pins the fault-free rows — a nil F would derive (1-alpha)*n faults.
	zero, six := 0, 6
	plan, err := fleet.NewPlan(fleet.Workload{
		Kind: fleet.KindSweep,
		Sweep: experiment.Sweep{
			Name:  "topo-quickstart",
			Title: "topology-general elections at n=64",
			Points: []experiment.SweepPoint{
				{Label: "d2 cluster-d2", Protocol: "d2election", N: 64, Alpha: 0.9, F: &zero, Topology: "cluster-d2", Reps: 8},
				{Label: "d2 cluster-d2 f=6", Protocol: "d2election", N: 64, Alpha: 0.9, F: &six, Policy: "half", Topology: "cluster-d2", Reps: 8},
				{Label: "d2 clique", Protocol: "d2election", N: 64, Alpha: 0.9, F: &zero, Topology: "clique", Reps: 8},
				{Label: "wc wellconnected", Protocol: "wcelection", N: 64, Alpha: 0.9, F: &zero, Topology: "wellconnected", Reps: 8},
			},
		},
		ShardReps: 2,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	out, err := fleet.Run(context.Background(), fleet.Config{
		Workers:  urls,
		Progress: log.Printf,
	}, plan)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := fleet.MergeReport(plan, out.Results)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
