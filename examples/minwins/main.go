// Multi-valued agreement: a fleet must converge on a single configuration
// epoch — the OLDEST one any sampled replica still runs, so nobody is
// left behind (min-wins semantics). This uses AgreeMin, the multi-valued
// generalization of the paper's binary agreement: same committee + referee
// structure, values propagate under the MIN rule, sublinear traffic, half
// the fleet crashing mid-protocol.
package main

import (
	"fmt"
	"log"

	"sublinear"
	"sublinear/internal/rng"
)

func main() {
	const (
		n     = 2048
		alpha = 0.5
		seed  = 21
	)

	// Replica config epochs: most of the fleet is on epoch 40-50, a few
	// stragglers remain on older epochs.
	src := rng.New(seed)
	values := make([]uint64, n)
	oldest := uint64(^uint64(0))
	for i := range values {
		values[i] = 40 + uint64(src.Intn(11))
		if src.Bool(0.02) { // 2% stragglers
			values[i] = 30 + uint64(src.Intn(5))
		}
		if values[i] < oldest {
			oldest = values[i]
		}
	}

	res, err := sublinear.AgreeMin(sublinear.Options{
		N: n, Alpha: alpha, Seed: seed,
		Faults: &sublinear.FaultModel{Faulty: n / 2, Policy: sublinear.DropHalf},
	}, values)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet of %d replicas, oldest epoch present: %d\n", n, oldest)
	fmt.Printf("agreement: success=%v decided epoch=%d\n", res.Eval.Success, res.Eval.Value)
	fmt.Printf("cost: %d messages, %d rounds, committee of %d\n",
		res.Counters.Messages(), res.Rounds, res.Eval.Candidates)
	fmt.Println()
	fmt.Println("note: implicit agreement samples the fleet — the decided epoch is the")
	fmt.Println("minimum over the random committee, which w.h.p. includes a straggler")
	fmt.Println("when stragglers are non-negligible; rare singletons can be missed,")
	fmt.Println("the price of sublinear communication (see examples/configflag).")
}
