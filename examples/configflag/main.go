// Config rollout: binary agreement as a crash-tolerant decision
// primitive. A fleet of replicas must decide whether to enable a new
// config flag; each replica votes its local health check (0 = "I saw a
// problem, abort", 1 = "fine, roll out"). The protocol is 0-biased: if
// any *committee* member holds a 0, the fleet agrees on 0 — under heavy
// crash faults, with sublinear traffic. The explicit extension then
// pushes the verdict to every replica.
//
// The output also shows the semantics of *implicit* agreement honestly:
// the committee is a random Theta(log n / alpha) sample, so a sparse
// pocket of abort votes can be missed when none of those replicas lands
// in the committee (the decided value is still some node's input, as
// Definition 2 requires). Widespread failures are caught with high
// probability. Sampled quorum health, not abort-on-any — the price of
// sublinear communication.
package main

import (
	"fmt"
	"log"

	"sublinear"
)

func main() {
	const (
		n     = 4096
		alpha = 0.5
		seed  = 7
	)

	scenarios := []struct {
		name    string
		badRate float64 // probability a replica's health check fails (votes 0)
	}{
		{"all healthy", 0},
		{"one bad pocket (~0.2%)", 0.002},
		{"widespread failures (20%)", 0.2},
	}

	for _, sc := range scenarios {
		// Vote 0 with probability badRate: RandomInputs sets 1 with
		// probability pOne.
		inputs := sublinear.RandomInputs(n, 1-sc.badRate, seed)
		zeros := 0
		for _, b := range inputs {
			if b == 0 {
				zeros++
			}
		}
		res, err := sublinear.Agree(sublinear.Options{
			N: n, Alpha: alpha, Seed: seed,
			Explicit: true, // every replica must learn the verdict
			Faults:   &sublinear.FaultModel{Faulty: n / 2, Policy: sublinear.DropHalf},
		}, inputs)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ROLL OUT"
		if res.Eval.Value == 0 {
			verdict = "ABORT"
		}
		if !res.Eval.Success {
			verdict = "NO DECISION: " + res.Eval.Reason
		}
		fmt.Printf("%-28s %4d abort votes -> %-9s  [%d msgs, %d rounds, all informed: %v]\n",
			sc.name+":", zeros, verdict,
			res.Counters.Messages(), res.Rounds, res.Eval.ExplicitOK)
	}

	fmt.Printf("\nsemantics: the fleet aborts iff the random committee sampled an abort vote —\n")
	fmt.Printf("sparse pockets can slip through (implicit agreement is sampled quorum health),\n")
	fmt.Printf("widespread failures are caught w.h.p.; with no abort votes in the committee the\n")
	fmt.Printf("iteration phase sends nothing at all.\n")
}
