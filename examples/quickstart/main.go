// Quickstart: run fault-tolerant leader election and agreement on a
// simulated 1024-node network where half the nodes crash mid-protocol,
// using only the public API.
package main

import (
	"fmt"
	"log"

	"sublinear"
)

func main() {
	const (
		n     = 1024
		alpha = 0.5 // at least half the nodes stay up
		seed  = 42
	)
	faults := &sublinear.FaultModel{
		Faulty: n / 2,              // the adversary may crash up to (1-alpha)n nodes...
		Policy: sublinear.DropHalf, // ...and split their final-round messages
	}

	// Leader election (implicit: only the leader must know it won).
	elect, err := sublinear.Elect(sublinear.Options{
		N: n, Alpha: alpha, Seed: seed, Faults: faults,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("election: success=%v leader=node %d (rank %d) in %d rounds, %d messages\n",
		elect.Eval.Success, elect.Eval.LeaderNode, elect.Eval.AgreedRank,
		elect.Rounds, elect.Counters.Messages())
	fmt.Printf("          committee of %d candidates, %d survived\n",
		elect.Eval.Candidates, elect.Eval.LiveCandidates)

	// Binary agreement on random inputs.
	inputs := sublinear.RandomInputs(n, 0.5, seed)
	agree, err := sublinear.Agree(sublinear.Options{
		N: n, Alpha: alpha, Seed: seed, Faults: faults,
	}, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agreement: success=%v value=%d in %d rounds, %d messages (%d bits)\n",
		agree.Eval.Success, agree.Eval.Value, agree.Rounds,
		agree.Counters.Messages(), agree.Counters.Bits())

	// The headline: both used far fewer than n^2 — and even fewer than n —
	// messages... per node, that is sublinear total communication.
	fmt.Printf("\nfor scale: n^2 = %d, n = %d, election used %d, agreement used %d\n",
		n*n, n, elect.Counters.Messages(), agree.Counters.Messages())
}
