// Permissionless-scale churn: the paper's introduction motivates
// protocols that tolerate an *arbitrary* number of faults, up to
// f = n - log^2 n, for open systems where participants come and go. This
// example runs leader election at that resilience frontier: alpha is the
// minimum the model admits, so all but ~log^2 n of the 512 nodes may
// crash — and the protocol still elects a unique leader among the
// survivors with high probability.
package main

import (
	"fmt"
	"log"

	"sublinear"
)

func main() {
	const (
		n    = 512
		runs = 5
	)
	alpha := sublinear.MinimumAlpha(n) // log^2(n)/n — maximum resilience
	f := int((1 - alpha) * float64(n))

	d, err := sublinear.Describe(sublinear.Tuning{}, n, alpha)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d alpha=%.4f -> up to f=%d crash faults (only ~%d nodes guaranteed up)\n",
		n, alpha, f, n-f)
	fmt.Printf("committee: E[|C|]=%.0f candidates, %d referees each, %d-round budget\n\n",
		d.ExpectedCandidates, d.RefereeCount, d.ElectionRounds)

	successes := 0
	for seed := uint64(1); seed <= runs; seed++ {
		res, err := sublinear.Elect(sublinear.Options{
			N: n, Alpha: alpha, Seed: seed,
			Faults: &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf},
		})
		if err != nil {
			log.Fatal(err)
		}
		crashed := 0
		for _, r := range res.CrashedAt {
			if r != 0 {
				crashed++
			}
		}
		fmt.Printf("run %d: success=%v leader rank=%d crashed=%d/%d messages=%d\n",
			seed, res.Eval.Success, res.Eval.AgreedRank, crashed, n,
			res.Counters.Messages())
		if res.Eval.Success {
			successes++
		}
	}
	fmt.Printf("\n%d/%d elections succeeded at the resilience frontier\n", successes, runs)
	fmt.Println("note: at this alpha the message bound is no longer sublinear —")
	fmt.Println("the paper's sublinearity needs alpha > log n / n^{1/5}; correctness holds regardless.")
}
