// Fleet quickstart: shard a small experiment sweep across three
// in-process simd workers and merge the results deterministically.
//
// This is the library view of what `fleetctl -sweep ... -spawn 3` does
// with real processes: the merged report below is bit-identical to the
// one a single worker (or a local, unsharded run) would produce,
// because shards carry exact seed ranges and return raw per-repetition
// series.
package main

import (
	"context"
	"log"
	"net/http/httptest"
	"os"

	"sublinear/internal/experiment"
	"sublinear/internal/fleet"
	"sublinear/internal/simsvc"
)

func main() {
	// Three "workers": real simsvc services behind test listeners. In
	// production these are simd daemons on other machines — fleetctl
	// -spawn 3 starts them for you locally.
	var urls []string
	for i := 0; i < 3; i++ {
		svc := simsvc.New(simsvc.Config{Workers: 2})
		srv := httptest.NewServer(svc.Handler())
		defer srv.Close()
		defer svc.Close(context.Background())
		urls = append(urls, srv.URL)
	}

	// A two-point sweep, 8 repetitions each, sharded 2 reps at a time →
	// 8 shards spread over the pool.
	plan, err := fleet.NewPlan(fleet.Workload{
		Kind: fleet.KindSweep,
		Sweep: experiment.Sweep{
			Name:  "quickstart",
			Title: "fleet quickstart sweep",
			Points: []experiment.SweepPoint{
				{Label: "election n=64", Protocol: "election", N: 64, Alpha: 0.75, Reps: 8},
				{Label: "agreement n=64", Protocol: "agreement", N: 64, Alpha: 0.75, Reps: 8},
			},
		},
		ShardReps: 2,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	out, err := fleet.Run(context.Background(), fleet.Config{
		Workers:  urls,
		Progress: log.Printf,
	}, plan)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := fleet.MergeReport(plan, out.Results)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
