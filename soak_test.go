package sublinear_test

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"sublinear"
	"sublinear/internal/core"
	"sublinear/internal/realnet"
	"sublinear/internal/rng"
	"sublinear/internal/trace"
)

// TestSoakRandomConfigurations is the chaos test: random network sizes,
// alphas, fault loads, policies and transports, checked against the hard
// invariants that must hold on EVERY run regardless of Monte Carlo
// outcomes:
//
//  1. the run never errors for a valid configuration;
//  2. an agreed election leader that crashed had self-proposed first
//     ("a crashed node is never elected");
//  3. at most one live node ends ELECTED;
//  4. a decided agreement value is some node's input;
//  5. accounting is sane (messages > 0, rounds within budget).
func TestSoakRandomConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	src := rng.New(0x50a1234)
	const runs = 40
	for i := 0; i < runs; i++ {
		n := 64 << src.Intn(3) // 64, 128, 256
		minA := sublinear.MinimumAlpha(n)
		alpha := minA + src.Float64()*(1-minA)
		maxF := int((1 - alpha) * float64(n))
		f := 0
		if maxF > 0 {
			f = src.Intn(maxF + 1)
		}
		policy := []sublinear.DropPolicy{
			sublinear.DropAll, sublinear.DropNone, sublinear.DropHalf, sublinear.DropRandom,
		}[src.Intn(4)]
		opts := sublinear.Options{
			N:          n,
			Alpha:      alpha,
			Seed:       src.Uint64(),
			Explicit:   src.Bool(0.3),
			Concurrent: src.Bool(0.3),
		}
		if f > 0 {
			opts.Faults = &sublinear.FaultModel{
				Faulty: f,
				Policy: policy,
				Hunter: src.Bool(0.25),
			}
		}

		res, err := sublinear.Elect(opts)
		if err != nil {
			t.Fatalf("run %d (n=%d alpha=%.3f f=%d): %v", i, n, alpha, f, err)
		}
		tun := opts.Tuning
		tun.Explicit = opts.Explicit
		d, err := sublinear.Describe(tun, n, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counters.Messages() <= 0 && res.Eval.Candidates > 0 {
			t.Errorf("run %d: no messages despite candidates", i)
		}
		if res.Rounds > d.ElectionRounds {
			t.Errorf("run %d: %d rounds exceeds budget %d", i, res.Rounds, d.ElectionRounds)
		}
		electedLive := 0
		for u, o := range res.Outputs {
			if o.State == sublinear.Elected && res.CrashedAt[u] == 0 {
				electedLive++
			}
		}
		if electedLive > 1 {
			t.Errorf("run %d: %d live ELECTED nodes", i, electedLive)
		}
		if res.Eval.Success && res.Eval.LeaderCrashed {
			if !res.Outputs[res.Eval.LeaderNode].SelfProposed {
				t.Errorf("run %d: crashed leader without self-proposal", i)
			}
		}

		inputs := sublinear.RandomInputs(n, src.Float64(), opts.Seed^0xf00d)
		ares, err := sublinear.Agree(opts, inputs)
		if err != nil {
			t.Fatalf("run %d agreement: %v", i, err)
		}
		if ares.Eval.Success {
			found := false
			for _, in := range inputs {
				if in == ares.Eval.Value {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("run %d: decided %d, not an input", i, ares.Eval.Value)
			}
		}
		if ares.Rounds > d.AgreementRounds+2 {
			t.Errorf("run %d: agreement rounds %d exceed budget %d", i, ares.Rounds, d.AgreementRounds)
		}
	}
}

// TestSoakRealnetChaos is the socket engine's chaos soak: random core
// systems over a Serve/Join split where a random node's connection is
// killed mid-run and immediately redialed (the restart must be rejected
// as a revenant, not re-admitted). Invariants on every iteration:
//
//  1. the coordinator survives and completes the run;
//  2. the loss is detected within one round — recorded as a crash at
//     exactly the kill round, both in the result and in the trace;
//  3. no other node is marked crashed;
//  4. the trace recorder's digest witness verifies (the event stream
//     folds to the digest the hub reported).
func TestSoakRealnetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	src := rng.New(0xc4a05)
	systems := []string{"election", "agreement", "minagree"}
	const runs = 8
	deadline := time.Now().Add(2 * time.Minute)
	for i := 0; i < runs && time.Now().Before(deadline); i++ {
		system := systems[src.Intn(len(systems))]
		n := 32
		alpha := 0.8 + src.Float64()*0.2
		seed := src.Uint64()
		victim := src.Intn(n)

		cfg, spec, err := core.RealnetSpec(system, n, alpha, seed, 0)
		if err != nil {
			t.Fatalf("run %d (%s): %v", i, system, err)
		}
		// Kill within the first rounds: every core system provably runs at
		// least 3 rounds, while MaxRounds is only an upper bound the run
		// may finish under — a kill scheduled past termination would
		// never fire and make the crash assertions vacuous.
		killRound := 1 + src.Intn(3)
		var buf bytes.Buffer
		rec, err := trace.NewRecorder(&buf, trace.Header{N: n, Seed: seed, Label: "chaos " + system})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Tracer = rec
		var addr string
		restarted := make(chan error, 1)
		cfg.OnListen = func(a string) { addr = a }
		cfg.ChaosKill = func(round, node int) bool {
			if round != killRound || node != victim {
				return false
			}
			// The "restart": redial the coordinator like a rebooted
			// worker would. The hub must reject it (the round structure
			// admits no late joiners) without disturbing the run.
			go func(addr string) {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					restarted <- nil
					return
				}
				conn.SetReadDeadline(time.Now().Add(10 * time.Second))
				_, err = conn.Read(make([]byte, 1))
				conn.Close()
				restarted <- err
			}(addr)
			return true
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		joinErr := make(chan error, 1)
		go func(addr string) { joinErr <- realnet.Join(addr, n) }(ln.Addr().String())
		res, err := realnet.Serve(cfg, spec, ln)
		if err != nil {
			t.Fatalf("run %d (%s seed=%d kill=%d/%d): %v", i, system, seed, victim, killRound, err)
		}
		if err := <-joinErr; err != nil {
			t.Fatalf("run %d (%s): worker: %v", i, system, err)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("run %d (%s): trace witness: %v", i, system, err)
		}
		if res.CrashedAt[victim] != killRound {
			t.Errorf("run %d (%s): CrashedAt[%d] = %d, want %d (detection within one round)",
				i, system, victim, res.CrashedAt[victim], killRound)
		}
		for u, r := range res.CrashedAt {
			if u != victim && r != 0 {
				t.Errorf("run %d (%s): node %d marked crashed at %d; only %d was killed", i, system, u, r, victim)
			}
		}
		select {
		case err := <-restarted:
			if err == nil {
				t.Logf("run %d: restart rejected at dial", i)
			}
		case <-time.After(15 * time.Second):
			t.Errorf("run %d (%s): restarted connection neither closed nor reset", i, system)
		}
		sawCrash := false
		tr, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("run %d (%s): trace: %v", i, system, err)
		}
		for {
			ev, err := tr.Next()
			if err != nil {
				if err != io.EOF && !sawCrash {
					t.Logf("run %d: trace read ended: %v", i, err)
				}
				break
			}
			if ev.Op == trace.OpCrash && ev.Node == victim && ev.Round == killRound {
				sawCrash = true
			}
		}
		if !sawCrash {
			t.Errorf("run %d (%s): trace has no crash event for node %d round %d", i, system, victim, killRound)
		}
	}
}
