package sublinear_test

import (
	"testing"

	"sublinear"
	"sublinear/internal/rng"
)

// TestSoakRandomConfigurations is the chaos test: random network sizes,
// alphas, fault loads, policies and transports, checked against the hard
// invariants that must hold on EVERY run regardless of Monte Carlo
// outcomes:
//
//  1. the run never errors for a valid configuration;
//  2. an agreed election leader that crashed had self-proposed first
//     ("a crashed node is never elected");
//  3. at most one live node ends ELECTED;
//  4. a decided agreement value is some node's input;
//  5. accounting is sane (messages > 0, rounds within budget).
func TestSoakRandomConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	src := rng.New(0x50a1234)
	const runs = 40
	for i := 0; i < runs; i++ {
		n := 64 << src.Intn(3) // 64, 128, 256
		minA := sublinear.MinimumAlpha(n)
		alpha := minA + src.Float64()*(1-minA)
		maxF := int((1 - alpha) * float64(n))
		f := 0
		if maxF > 0 {
			f = src.Intn(maxF + 1)
		}
		policy := []sublinear.DropPolicy{
			sublinear.DropAll, sublinear.DropNone, sublinear.DropHalf, sublinear.DropRandom,
		}[src.Intn(4)]
		opts := sublinear.Options{
			N:          n,
			Alpha:      alpha,
			Seed:       src.Uint64(),
			Explicit:   src.Bool(0.3),
			Concurrent: src.Bool(0.3),
		}
		if f > 0 {
			opts.Faults = &sublinear.FaultModel{
				Faulty: f,
				Policy: policy,
				Hunter: src.Bool(0.25),
			}
		}

		res, err := sublinear.Elect(opts)
		if err != nil {
			t.Fatalf("run %d (n=%d alpha=%.3f f=%d): %v", i, n, alpha, f, err)
		}
		tun := opts.Tuning
		tun.Explicit = opts.Explicit
		d, err := sublinear.Describe(tun, n, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counters.Messages() <= 0 && res.Eval.Candidates > 0 {
			t.Errorf("run %d: no messages despite candidates", i)
		}
		if res.Rounds > d.ElectionRounds {
			t.Errorf("run %d: %d rounds exceeds budget %d", i, res.Rounds, d.ElectionRounds)
		}
		electedLive := 0
		for u, o := range res.Outputs {
			if o.State == sublinear.Elected && res.CrashedAt[u] == 0 {
				electedLive++
			}
		}
		if electedLive > 1 {
			t.Errorf("run %d: %d live ELECTED nodes", i, electedLive)
		}
		if res.Eval.Success && res.Eval.LeaderCrashed {
			if !res.Outputs[res.Eval.LeaderNode].SelfProposed {
				t.Errorf("run %d: crashed leader without self-proposal", i)
			}
		}

		inputs := sublinear.RandomInputs(n, src.Float64(), opts.Seed^0xf00d)
		ares, err := sublinear.Agree(opts, inputs)
		if err != nil {
			t.Fatalf("run %d agreement: %v", i, err)
		}
		if ares.Eval.Success {
			found := false
			for _, in := range inputs {
				if in == ares.Eval.Value {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("run %d: decided %d, not an input", i, ares.Eval.Value)
			}
		}
		if ares.Rounds > d.AgreementRounds+2 {
			t.Errorf("run %d: agreement rounds %d exceed budget %d", i, ares.Rounds, d.AgreementRounds)
		}
	}
}
