package sublinear_test

import (
	"testing"

	"sublinear"
)

func TestElectOverTCP(t *testing.T) {
	res, err := sublinear.Elect(sublinear.Options{N: 48, Alpha: 0.75, Seed: 3, TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Eval.Success {
		t.Fatalf("TCP election failed: %s", res.Eval.Reason)
	}
	if res.Counters.Messages() == 0 {
		t.Fatal("no messages accounted over TCP")
	}
}

func TestElectOverTCPMatchesSimulator(t *testing.T) {
	// The TCP transport must produce the same protocol outcome as the
	// simulator for the same seed (same machines, same coins, same
	// fault-free schedule).
	sim, err := sublinear.Elect(sublinear.Options{N: 32, Alpha: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := sublinear.Elect(sublinear.Options{N: 32, Alpha: 1, Seed: 5, TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Eval.AgreedRank != tcp.Eval.AgreedRank || sim.Eval.LeaderNode != tcp.Eval.LeaderNode {
		t.Fatalf("transport changed the outcome: sim rank %d node %d, tcp rank %d node %d",
			sim.Eval.AgreedRank, sim.Eval.LeaderNode, tcp.Eval.AgreedRank, tcp.Eval.LeaderNode)
	}
	if sim.Counters.Messages() != tcp.Counters.Messages() {
		t.Fatalf("message counts differ: sim %d, tcp %d",
			sim.Counters.Messages(), tcp.Counters.Messages())
	}
}

func TestAgreeOverTCPWithFaults(t *testing.T) {
	inputs := sublinear.RandomInputs(48, 0.5, 9)
	res, err := sublinear.Agree(sublinear.Options{
		N: 48, Alpha: 0.75, Seed: 9, TCP: true,
		Faults: &sublinear.FaultModel{Faulty: 12, Policy: sublinear.DropHalf},
	}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Eval.Success {
		t.Fatalf("TCP agreement under faults failed: %s", res.Eval.Reason)
	}
}
