package sublinear_test

// Public-API coverage of the socket engine: the TCP option must produce
// the byte-identical execution digest the simulator computes for the
// same options, not merely the same protocol outcome. The exhaustive
// engine-level matrix lives in internal/realnet's conformance suite;
// these tests pin the sublinear.Options wiring on top of it.

import (
	"testing"

	"sublinear"
)

func TestElectOverTCPMatchesSimulator(t *testing.T) {
	opts := sublinear.Options{N: 32, Alpha: 1, Seed: 5}
	sim, err := sublinear.Elect(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.TCP = true
	tcp, err := sublinear.Elect(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Digest != tcp.Digest {
		t.Fatalf("transport changed the execution: sim digest %016x, tcp %016x", sim.Digest, tcp.Digest)
	}
	if sim.Eval.AgreedRank != tcp.Eval.AgreedRank || sim.Eval.LeaderNode != tcp.Eval.LeaderNode {
		t.Fatalf("transport changed the outcome: sim rank %d node %d, tcp rank %d node %d",
			sim.Eval.AgreedRank, sim.Eval.LeaderNode, tcp.Eval.AgreedRank, tcp.Eval.LeaderNode)
	}
	if sim.Counters.Messages() != tcp.Counters.Messages() || sim.Counters.Bits() != tcp.Counters.Bits() {
		t.Fatalf("accounting differs: sim (%d msgs, %d bits), tcp (%d msgs, %d bits)",
			sim.Counters.Messages(), sim.Counters.Bits(), tcp.Counters.Messages(), tcp.Counters.Bits())
	}
}

func TestAgreeOverTCPWithFaults(t *testing.T) {
	inputs := sublinear.RandomInputs(48, 0.5, 9)
	opts := sublinear.Options{
		N: 48, Alpha: 0.75, Seed: 9,
		Faults: &sublinear.FaultModel{Faulty: 12, Policy: sublinear.DropHalf},
	}
	sim, err := sublinear.Agree(opts, inputs)
	if err != nil {
		t.Fatal(err)
	}
	opts.TCP = true
	tcp, err := sublinear.Agree(opts, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !tcp.Eval.Success {
		t.Fatalf("TCP agreement under faults failed: %s", tcp.Eval.Reason)
	}
	if sim.Digest != tcp.Digest {
		t.Fatalf("fault injection diverged across transports: sim digest %016x, tcp %016x", sim.Digest, tcp.Digest)
	}
}

func TestAgreeMinOverTCP(t *testing.T) {
	values := []uint64{9, 4, 7, 4, 11, 6, 4, 9, 12, 5, 4, 8, 9, 10, 4, 6,
		9, 4, 7, 4, 11, 6, 4, 9, 12, 5, 4, 8, 9, 10, 4, 6}
	opts := sublinear.Options{N: 32, Alpha: 1, Seed: 13}
	sim, err := sublinear.AgreeMin(opts, values)
	if err != nil {
		t.Fatal(err)
	}
	opts.TCP = true
	tcp, err := sublinear.AgreeMin(opts, values)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Digest != tcp.Digest {
		t.Fatalf("transport changed the execution: sim digest %016x, tcp %016x", sim.Digest, tcp.Digest)
	}
}
