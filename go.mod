module sublinear

go 1.22
