// Benchmarks: one per reproduction experiment (see DESIGN.md, E1–E10).
// Each benchmark runs complete protocol executions and reports, besides
// ns/op, the protocol-level costs the paper is about: messages, bits and
// rounds per run. Run with:
//
//	go test -bench=. -benchmem
package sublinear_test

import (
	"testing"

	"sublinear"
	"sublinear/internal/baseline"
	"sublinear/internal/fault"
	"sublinear/internal/graph"
	"sublinear/internal/rng"
	"sublinear/internal/walks"
)

// reportProto attaches protocol-level metrics to a benchmark.
type protoCost struct {
	msgs, bits, rounds float64
	fails              int
	runs               int
}

func (c *protoCost) report(b *testing.B) {
	b.Helper()
	n := float64(c.runs)
	b.ReportMetric(c.msgs/n, "msgs/run")
	b.ReportMetric(c.bits/n, "bits/run")
	b.ReportMetric(c.rounds/n, "rounds/run")
	b.ReportMetric(float64(c.fails)/n, "failures/run")
}

func benchElection(b *testing.B, opts sublinear.Options) {
	b.Helper()
	var cost protoCost
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i) + 1
		res, err := sublinear.Elect(opts)
		if err != nil {
			b.Fatal(err)
		}
		cost.runs++
		cost.msgs += float64(res.Counters.Messages())
		cost.bits += float64(res.Counters.Bits())
		cost.rounds += float64(res.Rounds)
		if !res.Eval.Success {
			cost.fails++
		}
	}
	cost.report(b)
}

func benchAgreement(b *testing.B, opts sublinear.Options, pOne float64) {
	b.Helper()
	var cost protoCost
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i) + 1
		inputs := sublinear.RandomInputs(opts.N, pOne, opts.Seed^0xfeed)
		res, err := sublinear.Agree(opts, inputs)
		if err != nil {
			b.Fatal(err)
		}
		cost.runs++
		cost.msgs += float64(res.Counters.Messages())
		cost.bits += float64(res.Counters.Bits())
		cost.rounds += float64(res.Rounds)
		if !res.Eval.Success {
			cost.fails++
		}
	}
	cost.report(b)
}

func halfFaults(n int) *sublinear.FaultModel {
	return &sublinear.FaultModel{Faulty: n / 2, Policy: sublinear.DropHalf}
}

// E1 — Table I: the same workload across the protocol landscape.

func BenchmarkE1TableIOursImplicit(b *testing.B) {
	benchAgreement(b, sublinear.Options{N: 2048, Alpha: 0.5, Faults: halfFaults(2048)}, 0.5)
}

func BenchmarkE1TableIOursExplicit(b *testing.B) {
	benchAgreement(b, sublinear.Options{N: 2048, Alpha: 0.5, Explicit: true, Faults: halfFaults(2048)}, 0.5)
}

func BenchmarkE1TableIGKStyle(b *testing.B) {
	var cost protoCost
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		inputs := sublinear.RandomInputs(2048, 0.5, seed^0xfeed)
		adv := fault.Must(fault.NewRandomPlan(2048, 1023, 20, fault.DropHalf, rng.New(seed)))
		res, err := baseline.RunGK(baseline.GKConfig{N: 2048, Seed: seed}, inputs, adv)
		if err != nil {
			b.Fatal(err)
		}
		cost.runs++
		cost.msgs += float64(res.Counters.Messages())
		cost.bits += float64(res.Counters.Bits())
		cost.rounds += float64(res.Rounds)
		if !res.Success {
			cost.fails++
		}
	}
	cost.report(b)
}

func BenchmarkE1TableIFloodSet(b *testing.B) {
	var cost protoCost
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		inputs := sublinear.RandomInputs(2048, 0.5, seed^0xfeed)
		adv := fault.Must(fault.NewRandomPlan(2048, 1023, 1024, fault.DropHalf, rng.New(seed)))
		res, err := baseline.RunFloodSet(baseline.FloodSetConfig{N: 2048, Seed: seed, F: 1023}, inputs, adv)
		if err != nil {
			b.Fatal(err)
		}
		cost.runs++
		cost.msgs += float64(res.Counters.Messages())
		cost.bits += float64(res.Counters.Bits())
		cost.rounds += float64(res.Rounds)
		if !res.Success {
			cost.fails++
		}
	}
	cost.report(b)
}

func BenchmarkE1TableIPushGossip(b *testing.B) {
	var cost protoCost
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		inputs := sublinear.RandomInputs(2048, 0.5, seed^0xfeed)
		adv := fault.Must(fault.NewRandomPlan(2048, 1023, 20, fault.DropHalf, rng.New(seed)))
		res, err := baseline.RunGossip(baseline.GossipConfig{N: 2048, Seed: seed}, inputs, adv)
		if err != nil {
			b.Fatal(err)
		}
		cost.runs++
		cost.msgs += float64(res.Counters.Messages())
		cost.bits += float64(res.Counters.Bits())
		cost.rounds += float64(res.Rounds)
		if !res.Success {
			cost.fails++
		}
	}
	cost.report(b)
}

func BenchmarkE1TableIRotatingCoordinator(b *testing.B) {
	var cost protoCost
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		inputs := sublinear.RandomInputs(2048, 0.5, seed^0xfeed)
		adv := fault.Must(fault.NewRandomPlan(2048, 1023, 1024, fault.DropHalf, rng.New(seed)))
		res, err := baseline.RunRotating(baseline.RotatingConfig{N: 2048, Seed: seed, F: 1023}, inputs, adv)
		if err != nil {
			b.Fatal(err)
		}
		cost.runs++
		cost.msgs += float64(res.Counters.Messages())
		cost.bits += float64(res.Counters.Bits())
		cost.rounds += float64(res.Rounds)
		if !res.Success {
			cost.fails++
		}
	}
	cost.report(b)
}

func BenchmarkE1TableIAMPFaultFree(b *testing.B) {
	var cost protoCost
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		inputs := sublinear.RandomInputs(2048, 0.5, seed^0xfeed)
		res, err := baseline.RunAMP(baseline.AMPConfig{N: 2048, Seed: seed}, inputs)
		if err != nil {
			b.Fatal(err)
		}
		cost.runs++
		cost.msgs += float64(res.Counters.Messages())
		cost.bits += float64(res.Counters.Bits())
		cost.rounds += float64(res.Rounds)
		if !res.Success {
			cost.fails++
		}
	}
	cost.report(b)
}

func BenchmarkE1TableIKuttenFaultFree(b *testing.B) {
	var cost protoCost
	for i := 0; i < b.N; i++ {
		res, err := baseline.RunKutten(baseline.KuttenConfig{N: 2048, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		cost.runs++
		cost.msgs += float64(res.Counters.Messages())
		cost.bits += float64(res.Counters.Bits())
		cost.rounds += float64(res.Rounds)
		if !res.Success {
			cost.fails++
		}
	}
	cost.report(b)
}

func BenchmarkE1TableIAllPairs(b *testing.B) {
	var cost protoCost
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		adv := fault.Must(fault.NewRandomPlan(2048, 1023, 1024, fault.DropHalf, rng.New(seed)))
		res, err := baseline.RunAllPairs(baseline.AllPairsConfig{N: 2048, Seed: seed, F: 1023}, adv)
		if err != nil {
			b.Fatal(err)
		}
		cost.runs++
		cost.msgs += float64(res.Counters.Messages())
		cost.bits += float64(res.Counters.Bits())
		cost.rounds += float64(res.Rounds)
		if !res.Success {
			cost.fails++
		}
	}
	cost.report(b)
}

// E2 — election message scaling in n (Theorem 4.1).

func BenchmarkE2ElectionVsN(b *testing.B) {
	for _, n := range []int{512, 1024, 2048, 4096} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			benchElection(b, sublinear.Options{N: n, Alpha: 0.5, Faults: halfFaults(n)})
		})
	}
}

// E3 — election message scaling in alpha (Theorem 4.1).

func BenchmarkE3ElectionVsAlpha(b *testing.B) {
	for _, tt := range []struct {
		label string
		alpha float64
	}{{"alpha1", 1}, {"alpha1over2", 0.5}, {"alpha1over4", 0.25}} {
		b.Run(tt.label, func(b *testing.B) {
			n := 1024
			f := int((1 - tt.alpha) * float64(n))
			opts := sublinear.Options{N: n, Alpha: tt.alpha}
			if f > 0 {
				opts.Faults = &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf}
			}
			benchElection(b, opts)
		})
	}
}

// E4 — leader safety under the footnote-3 adversary (Theorem 4.1).

func BenchmarkE4LeaderSafety(b *testing.B) {
	benchElection(b, sublinear.Options{N: 1024, Alpha: 0.5,
		Faults: &sublinear.FaultModel{Faulty: 512, CrashAfterElection: true}})
}

// E5 — agreement message scaling (Theorem 5.1).

func BenchmarkE5AgreementScaling(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			benchAgreement(b, sublinear.Options{N: n, Alpha: 0.5, Faults: halfFaults(n)}, 0.5)
		})
	}
}

// E6 — message starvation (Theorems 4.2/5.2): referee sample at 1/16 of
// the paper's constant; failures/run is the metric to watch.

func BenchmarkE6MessageStarvation(b *testing.B) {
	benchAgreement(b, sublinear.Options{N: 1024, Alpha: 0.5,
		Tuning: sublinear.Tuning{RefereeFactor: 0.125},
		Faults: halfFaults(1024)}, 0.5)
}

// E7 — round complexity with EarlyStop (Corollaries 1/3).

func BenchmarkE7Rounds(b *testing.B) {
	benchElection(b, sublinear.Options{N: 1024, Alpha: 0.5,
		Tuning: sublinear.Tuning{EarlyStop: true},
		Faults: &sublinear.FaultModel{Faulty: 256, Policy: sublinear.DropHalf}})
}

// E8 — the resilience frontier f = n - log^2 n.

func BenchmarkE8Frontier(b *testing.B) {
	n := 256
	alpha := sublinear.MinimumAlpha(n)
	f := int((1 - alpha) * float64(n))
	benchElection(b, sublinear.Options{N: n, Alpha: alpha,
		Faults: &sublinear.FaultModel{Faulty: f, Policy: sublinear.DropHalf}})
}

// E9 — explicit extension overhead.

func BenchmarkE9Explicit(b *testing.B) {
	b.Run("election", func(b *testing.B) {
		benchElection(b, sublinear.Options{N: 1024, Alpha: 0.5, Explicit: true, Faults: halfFaults(1024)})
	})
	b.Run("agreement", func(b *testing.B) {
		benchAgreement(b, sublinear.Options{N: 1024, Alpha: 0.5, Explicit: true, Faults: halfFaults(1024)}, 0.5)
	})
}

// E10 — engine ablation: identical protocol work on the sequential vs the
// goroutine-per-chunk concurrent engine.

func BenchmarkE10AblationEngineSequential(b *testing.B) {
	benchElection(b, sublinear.Options{N: 1024, Alpha: 0.5, Faults: halfFaults(1024)})
}

func BenchmarkE10AblationEngineConcurrent(b *testing.B) {
	benchElection(b, sublinear.Options{N: 1024, Alpha: 0.5, Concurrent: true, Faults: halfFaults(1024)})
}

// E12 — general-graph walk election (open problem 2).

func BenchmarkE12WalkElection(b *testing.B) {
	topos := []struct {
		name string
		mk   func() (graph.Graph, error)
	}{
		{"complete1024", func() (graph.Graph, error) { return graph.Complete(1024) }},
		{"regular1024", func() (graph.Graph, error) { return graph.RandomRegular(1024, 8, 5) }},
		{"hypercube1024", func() (graph.Graph, error) { return graph.Hypercube(10) }},
	}
	for _, tp := range topos {
		b.Run(tp.name, func(b *testing.B) {
			g, err := tp.mk()
			if err != nil {
				b.Fatal(err)
			}
			var cost protoCost
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := walks.Run(g, uint64(i)+1, walks.Params{}, nil)
				if err != nil {
					b.Fatal(err)
				}
				cost.runs++
				cost.msgs += float64(res.Counters.Messages())
				cost.bits += float64(res.Counters.Bits())
				cost.rounds += float64(res.Rounds)
				if !res.Eval.Success {
					cost.fails++
				}
			}
			cost.report(b)
		})
	}
}

func sizeLabel(n int) string {
	switch n {
	case 512:
		return "n512"
	case 1024:
		return "n1024"
	case 2048:
		return "n2048"
	case 4096:
		return "n4096"
	case 16384:
		return "n16384"
	default:
		return "n"
	}
}
