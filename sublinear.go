package sublinear

import (
	"errors"
	"fmt"

	"sublinear/internal/core"
	"sublinear/internal/fault"
	"sublinear/internal/netsim"
	"sublinear/internal/rng"
)

// Re-exported result and evaluation types. These are the concrete types
// returned by Elect and Agree; their fields and methods are documented in
// internal/core.
type (
	// ElectionResult is the outcome of one leader-election run.
	ElectionResult = core.ElectionResult
	// ElectionOutput is a single node's election output.
	ElectionOutput = core.ElectionOutput
	// ElectionEval is the per-run success evaluation (Definition 1).
	ElectionEval = core.ElectionEval
	// AgreementResult is the outcome of one agreement run.
	AgreementResult = core.AgreementResult
	// AgreementOutput is a single node's agreement output.
	AgreementOutput = core.AgreementOutput
	// AgreementEval is the per-run success evaluation (Definition 2).
	AgreementEval = core.AgreementEval
	// MinAgreementResult is the outcome of one multi-valued agreement
	// run (AgreeMin).
	MinAgreementResult = core.MinAgreementResult
	// MinAgreementOutput is a single node's multi-valued output.
	MinAgreementOutput = core.MinAgreementOutput
	// Tuning exposes the algorithm constants (candidate probability,
	// referee sample and iteration budget factors).
	Tuning = core.Params
)

// Node election states.
const (
	// Undecided is the bot state.
	Undecided = core.Undecided
	// Elected marks the unique leader.
	Elected = core.Elected
	// NonElected marks every other node.
	NonElected = core.NonElected
)

// DropPolicy selects what happens to a crashing node's final-round
// messages.
type DropPolicy = fault.DropPolicy

// Crash-round delivery policies, re-exported from internal/fault.
const (
	// DropAll loses every message of the crash round.
	DropAll = fault.DropAll
	// DropNone delivers everything, then the node halts.
	DropNone = fault.DropNone
	// DropHalf delivers half the outbox — the adversarial split.
	DropHalf = fault.DropHalf
	// DropRandom loses each message with probability 1/2.
	DropRandom = fault.DropRandom
)

// FaultModel describes the crash-fault adversary for a run. The faulty
// set is chosen uniformly at random (the paper's static adversary); crash
// timing follows the selected mode.
type FaultModel struct {
	// Faulty is the number of faulty nodes f. The run's alpha must
	// satisfy f <= (1-alpha) n.
	Faulty int
	// Policy governs crash-round message delivery. Zero means DropHalf,
	// the adversarial default.
	Policy DropPolicy
	// Window limits crash rounds to [1, Window]; 0 means the whole
	// execution.
	Window int
	// CrashAfterElection, when set, crashes every faulty node late with
	// full delivery (the paper's footnote-3 scenario, under which the
	// elected leader is faulty with probability f/n).
	CrashAfterElection bool
	// Hunter switches to the adaptive adversary that crashes faulty
	// nodes the moment they burst messages like committee members,
	// splitting delivery.
	Hunter bool
	// Seed seeds the adversary's choices; 0 derives it from the run
	// seed.
	Seed uint64
}

// Options configures a protocol run.
type Options struct {
	// N is the network size (>= 2).
	N int
	// Alpha is the guaranteed non-faulty fraction, in [log^2 n / n, 1].
	Alpha float64
	// Seed makes the run reproducible.
	Seed uint64
	// Faults selects the adversary; nil runs fault-free.
	Faults *FaultModel
	// Explicit extends the implicit protocol so every node learns the
	// result (O(n log n / alpha) extra messages, O(1) extra rounds).
	Explicit bool
	// Tuning overrides the paper's constants; the zero value is the
	// defaults.
	Tuning Tuning
	// Concurrent runs node state machines on a worker pool with a round
	// barrier.
	Concurrent bool
	// Actors selects netsim.Actors, which is now a compatibility alias
	// for the Parallel sharded pipeline (the goroutine-per-node engine
	// is retired; see the netsim.RunMode docs). Overrides Concurrent.
	// All engine modes produce identical results for identical seeds.
	Actors bool
	// TCP runs the protocol over real TCP loopback sockets with the
	// binary wire codec instead of the in-memory simulator: one socket
	// per node, a hub enforcing the round structure, identical model
	// semantics — the socket engine (internal/realnet) produces the
	// same execution digest as the simulator for the same seed and
	// schedule. Intended for modest n (every round is n socket
	// round-trips). Overrides Concurrent and Actors.
	TCP bool
	// Record keeps the message trace (needed for influence-cloud
	// analysis; costs memory). Not available over TCP.
	Record bool
	// Tracer streams every engine event to an execution flight
	// recorder (see internal/trace and cmd/tracectl). Unlike Record it
	// works at any worker count and costs nothing when nil. Honored by
	// every mode including TCP, which emits the identical event stream.
	Tracer Tracer
}

// Tracer receives the engine's event stream; trace.NewRecorder builds
// one that writes the binary trace format with a digest witness.
type Tracer = netsim.Tracer

// ErrTooManyFaults is returned when the fault model exceeds what alpha
// admits.
var ErrTooManyFaults = errors.New("sublinear: faulty count exceeds (1-alpha)*n")

// Elect runs fault-tolerant implicit (or explicit) leader election and
// returns the full result, including per-node outputs, message/bit/round
// accounting, and the Definition-1 evaluation.
func Elect(opts Options) (*ElectionResult, error) {
	cfg, err := opts.runConfig()
	if err != nil {
		return nil, err
	}
	if opts.TCP {
		return core.RunElectionOverTCP(cfg)
	}
	return core.RunElection(cfg)
}

// AgreeMin runs the multi-valued generalization of the agreement
// protocol: the committee converges on the MINIMUM of its members'
// values (one value per node, < 2^62 to fit the CONGEST payload). The
// binary protocol is the 0/1 special case. Implicit only.
func AgreeMin(opts Options, values []uint64) (*MinAgreementResult, error) {
	cfg, err := opts.runConfig()
	if err != nil {
		return nil, err
	}
	if opts.TCP {
		return core.RunMinAgreementOverTCP(cfg, values)
	}
	return core.RunMinAgreement(cfg, values)
}

// Agree runs fault-tolerant implicit (or explicit) binary agreement on
// the given inputs (one bit per node).
func Agree(opts Options, inputs []int) (*AgreementResult, error) {
	cfg, err := opts.runConfig()
	if err != nil {
		return nil, err
	}
	if opts.TCP {
		return core.RunAgreementOverTCP(cfg, inputs)
	}
	return core.RunAgreement(cfg, inputs)
}

// MinimumAlpha returns the smallest admissible alpha for n nodes,
// log^2(n)/n — the resilience frontier f = n - log^2 n.
func MinimumAlpha(n int) float64 { return core.MinimumAlpha(n) }

// Derived reports the concrete protocol quantities for a parameter
// choice: candidate probability, expected committee size, referee sample
// size, iteration budget, and total round budgets.
type Derived = core.Derived

// Describe validates (n, alpha) under the given tuning and returns the
// derived protocol quantities.
func Describe(t Tuning, n int, alpha float64) (Derived, error) {
	return core.DeriveParams(t, n, alpha)
}

// RandomInputs returns n random bits, each 1 with probability pOne, for
// agreement workloads.
func RandomInputs(n int, pOne float64, seed uint64) []int {
	src := rng.New(seed)
	inputs := make([]int, n)
	for i := range inputs {
		if src.Bool(pOne) {
			inputs[i] = 1
		}
	}
	return inputs
}

// ConstantInputs returns n copies of bit — the validity-critical
// workloads (all zeros / all ones).
func ConstantInputs(n, bit int) []int {
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = bit
	}
	return inputs
}

// SparseZeros returns all-ones inputs with exactly k zeros planted at
// uniformly random positions — the hardest workload for the 0-biased
// agreement (the zeros must reach the committee to matter).
func SparseZeros(n, k int, seed uint64) []int {
	inputs := ConstantInputs(n, 1)
	if k <= 0 {
		return inputs
	}
	if k > n {
		k = n
	}
	src := rng.New(seed)
	for _, idx := range src.SampleDistinct(k, n, nil) {
		inputs[idx] = 0
	}
	return inputs
}

func (opts Options) runConfig() (core.RunConfig, error) {
	params := opts.Tuning
	params.Explicit = params.Explicit || opts.Explicit
	cfg := core.RunConfig{
		N:          opts.N,
		Alpha:      opts.Alpha,
		Seed:       opts.Seed,
		Params:     params,
		Record:     opts.Record,
		Tracer:     opts.Tracer,
		Concurrent: opts.Concurrent,
	}
	if opts.Actors {
		cfg.Mode = netsim.Actors
	}
	if opts.Faults == nil {
		return cfg, nil
	}
	adv, err := opts.buildAdversary(params)
	if err != nil {
		return core.RunConfig{}, err
	}
	cfg.Adversary = adv
	return cfg, nil
}

func (opts Options) buildAdversary(params core.Params) (netsim.Adversary, error) {
	fm := *opts.Faults
	maxFaulty := int((1 - opts.Alpha) * float64(opts.N))
	if fm.Faulty > maxFaulty {
		return nil, fmt.Errorf("%w: f=%d, (1-alpha)n=%d", ErrTooManyFaults, fm.Faulty, maxFaulty)
	}
	if fm.Policy == 0 {
		fm.Policy = DropHalf
	}
	seed := fm.Seed
	if seed == 0 {
		seed = opts.Seed ^ 0x5eedfa17
	}
	src := rng.New(seed)
	derived, err := core.DeriveParams(params, opts.N, opts.Alpha)
	if err != nil {
		return nil, err
	}
	horizon := derived.ElectionRounds
	if derived.AgreementRounds > horizon {
		horizon = derived.AgreementRounds
	}
	switch {
	case fm.CrashAfterElection:
		return fault.NewLateCrashPlan(opts.N, fm.Faulty, horizon+1, src)
	case fm.Hunter:
		return fault.NewHunter(opts.N, fm.Faulty, 8, fm.Policy, src), nil
	default:
		window := fm.Window
		if window <= 0 || window > horizon {
			window = horizon
		}
		return fault.NewRandomPlan(opts.N, fm.Faulty, window, fm.Policy, src)
	}
}
